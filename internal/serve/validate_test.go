package serve

import (
	"errors"
	"math"
	"testing"

	"repro/internal/multipath"
	"repro/internal/obs"
)

// TestSubmitRejectsBadEvents: Submit-time validation refuses malformed
// events with ErrBadEvent before they can reach a shard queue — no
// accounting as submitted, no session opened, nothing for feature
// extraction to choke on.
func TestSubmitRejectsBadEvents(t *testing.T) {
	reg := obs.New()
	rec := trainRec(t, 7)
	sink := newSink()
	e, err := New(rec, Options{Shards: 2, OnResult: sink.add, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	nan := math.NaN()
	inf := math.Inf(1)
	bad := []struct {
		name string
		ev   Event
	}{
		{"nan x", Event{Session: "s", Kind: multipath.FingerDown, X: nan, Y: 1, T: 1}},
		{"inf y", Event{Session: "s", Kind: multipath.FingerDown, X: 1, Y: inf, T: 1}},
		{"nan t", Event{Session: "s", Kind: multipath.FingerDown, X: 1, Y: 1, T: nan}},
		{"neg inf x", Event{Session: "s", Kind: multipath.FingerDown, X: math.Inf(-1), Y: 1, T: 1}},
		{"negative t", Event{Session: "s", Kind: multipath.FingerDown, X: 1, Y: 1, T: -0.5}},
		{"empty session", Event{Session: "", Kind: multipath.FingerDown, X: 1, Y: 1, T: 1}},
	}
	for _, tc := range bad {
		err := e.Submit(tc.ev)
		if !errors.Is(err, ErrBadEvent) {
			t.Errorf("%s: Submit = %v, want ErrBadEvent", tc.name, err)
		}
	}

	st := e.Stats()
	if st.Submitted != 0 {
		t.Errorf("Stats.Submitted = %d after only bad events, want 0", st.Submitted)
	}
	if st.Bad != int64(len(bad)) {
		t.Errorf("Stats.Bad = %d, want %d", st.Bad, len(bad))
	}
	if got := snapCounter(t, reg.Snapshot(), "serve.events.bad"); got != int64(len(bad)) {
		t.Errorf("serve.events.bad = %d, want %d", got, len(bad))
	}
}

// TestSubmitRejectsRegressingTimestamps: within one session, an event
// whose timestamp drops below the session's accepted high-water mark is
// refused; equal timestamps are fine (multi-finger frames share one).
func TestSubmitRejectsRegressingTimestamps(t *testing.T) {
	rec := trainRec(t, 7)
	e, err := New(rec, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	if err := e.Submit(Event{Session: "a", Kind: multipath.FingerDown, X: 1, Y: 1, T: 5}); err != nil {
		t.Fatalf("first event: %v", err)
	}
	if err := e.Submit(Event{Session: "a", Kind: multipath.FingerMove, X: 2, Y: 2, T: 3}); !errors.Is(err, ErrBadEvent) {
		t.Fatalf("regressing T: Submit = %v, want ErrBadEvent", err)
	}
	if err := e.Submit(Event{Session: "a", Kind: multipath.FingerMove, X: 2, Y: 2, T: 5}); err != nil {
		t.Fatalf("equal T should be accepted: %v", err)
	}
	// Other sessions keep their own high-water mark.
	if err := e.Submit(Event{Session: "b", Kind: multipath.FingerDown, X: 1, Y: 1, T: 1}); err != nil {
		t.Fatalf("independent session: %v", err)
	}
	st := e.Stats()
	if st.Submitted != 3 || st.Bad != 1 {
		t.Errorf("Stats = %+v, want Submitted 3, Bad 1", st)
	}
}
