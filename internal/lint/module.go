package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ModuleAnalyzer is a static check that needs to see every package of the
// module at once — the hotalloc allocation gate walks call chains across
// package boundaries, which a per-package Pass cannot do.
type ModuleAnalyzer struct {
	// Name identifies the analyzer in output and //lint:ignore directives.
	Name string
	// Doc is a one-paragraph description shown by `glint -list`.
	Doc string
	// Run performs the check.
	Run func(*ModulePass) error
}

// ModulePass carries every loaded package through one module analyzer.
// All packages share one token.FileSet (the loader guarantees this), so
// positions are comparable across packages.
type ModulePass struct {
	Analyzer *ModuleAnalyzer
	Fset     *token.FileSet
	Pkgs     []*Package
	// Module is the module import-path prefix ("repro"); call edges are
	// followed only into packages under it.
	Module string

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunModuleAnalyzers applies each module analyzer to the package set and
// returns the raw diagnostics, unsorted and unsuppressed — the caller owns
// the Directives collection so that usage tracking spans package-level and
// module-level stages alike.
func RunModuleAnalyzers(fset *token.FileSet, pkgs []*Package, module string, analyzers []*ModuleAnalyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &ModulePass{Analyzer: a, Fset: fset, Pkgs: pkgs, Module: module}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: module analyzer %s: %w", a.Name, err)
		}
		diags = append(diags, pass.diags...)
	}
	return diags, nil
}

// inModule reports whether the package path is part of the analyzed
// module: the module path itself or any package under it.
func inModule(pkgPath, module string) bool {
	return pkgPath == module || strings.HasPrefix(pkgPath, module+"/")
}

// funcInfo is one function declaration in the module-wide index.
type funcInfo struct {
	decl *ast.FuncDecl
	pkg  *Package
}

// indexFuncs builds the module-wide function index. Keys are
// (*types.Func).FullName() strings — e.g. "(*repro/internal/eager.Session).Add" —
// because the loader type-checks each package in its own universe: the
// types.Func a caller's package resolves for a cross-package callee is a
// distinct object from the one the callee's own package defines, so object
// identity cannot join them, but their full names agree.
func indexFuncs(pkgs []*Package) map[string]funcInfo {
	idx := make(map[string]funcInfo)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				idx[fn.FullName()] = funcInfo{decl: fd, pkg: pkg}
			}
		}
	}
	return idx
}

// calleeFunc resolves the statically-known callee of a call expression:
// a plain function, a method called on a concrete receiver, or nil when
// the target is dynamic (an interface method, a function value, a builtin,
// or a type conversion).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
			if sel.Kind() == types.MethodVal {
				if recv := sel.Recv(); recv != nil && types.IsInterface(recv) {
					return nil // dynamic dispatch
				}
			}
		} else {
			obj = info.Uses[fun.Sel]
		}
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}
