// Eagerdemo: watch eager recognition happen point by point.
//
// An eager recognizer answers, while the gesture is still being drawn,
// "has enough been seen to classify unambiguously?" This demo streams a
// gesture into an EagerSession and prints the moment recognition fires —
// the thin-to-thick transition in the paper's figures 9 and 10 — then
// shows the same stroke under the not-amenable note-gesture set of
// figure 8, where firing must wait until the very end.
package main

import (
	"fmt"
	"log"
	"strings"

	rubine "repro"
)

func streamOne(rec *rubine.EagerRecognizer, class string, g rubine.Gesture) {
	session, err := rec.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	firedAt := -1
	var got string
	for i, p := range g.Points {
		fired, c, err := session.Add(p)
		if err != nil {
			log.Fatal(err)
		}
		if fired {
			firedAt, got = i+1, c
		}
	}
	if firedAt < 0 {
		got, err = session.End()
		if err != nil {
			log.Fatal(err)
		}
		firedAt = g.Len()
	}
	// Draw the timeline: '-' for ambiguous points, '#' once recognized.
	timeline := strings.Repeat("-", firedAt) + strings.Repeat("#", g.Len()-firedAt)
	mark := " "
	if got != class {
		mark = "E"
	}
	fmt.Printf("  %-13s %s %s  fired at %2d/%2d -> %s\n", class, mark, timeline, firedAt, g.Len(), got)
}

func run(name string, trainSeed, testSeed int64) {
	fmt.Printf("\n=== %s ===\n", name)
	train := rubine.Generate(name, 10, trainSeed)
	rec, report, err := rubine.TrainEager(train, rubine.DefaultEagerOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: %d subgestures, %d moved as accidentally complete, AUC %d classes\n",
		report.Subgestures, report.MovedAccidental, report.AUCClasses)
	test := rubine.Generate(name, 2, testSeed)
	for _, e := range test.Examples {
		streamOne(rec, e.Class, e.Gesture)
	}
}

func main() {
	fmt.Println("eager recognition: '-' = still ambiguous, '#' = after recognition")
	// Figure 9's set: every class turns unambiguous at its corner, so
	// recognition fires mid-stroke.
	run(rubine.EightDirections, 7, 1007)
	// Figure 8's set: each note gesture is a prefix of the next, so eager
	// recognition cannot fire early.
	run(rubine.Notes, 8, 1008)
}
