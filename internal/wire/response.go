package wire

import (
	"fmt"
	"io"
)

// Response type bytes: ASCII ACK for a per-frame acknowledgement, ASCII
// NAK for a connection-fatal error.
const (
	respAck   = 0x06
	respFatal = 0x15
)

// NackCode is the wire form of one refused event's reason. Codes map
// the serving engine's typed Submit errors one-to-one; see
// OBSERVABILITY.md ("Wire ingestion") for the counter each feeds.
type NackCode uint8

// NACK codes. Zero is reserved (an absent code).
const (
	// NackBadEvent maps serve.ErrBadEvent: the event failed Submit-time
	// validation and retrying cannot help.
	NackBadEvent NackCode = 1
	// NackQueueFull maps a bare serve.ErrQueueFull: the shard queue was
	// full and the ingest policy chose not to retry.
	NackQueueFull NackCode = 2
	// NackShed maps serve.ErrShed: the ingest Submitter retried its full
	// budget and gave up.
	NackShed NackCode = 3
	// NackClosed maps serve.ErrClosed: the engine is shutting down; the
	// server closes the connection after the response.
	NackClosed NackCode = 4
)

// String names the code ("bad_event", "queue_full", "shed", "closed");
// unknown values render as "nack(N)".
func (c NackCode) String() string {
	switch c {
	case NackBadEvent:
		return "bad_event"
	case NackQueueFull:
		return "queue_full"
	case NackShed:
		return "shed"
	case NackClosed:
		return "closed"
	}
	return fmt.Sprintf("nack(%d)", uint8(c))
}

// FatalCode is the wire form of a connection-fatal condition: the server
// sends it in a NAK response and closes the connection.
type FatalCode uint8

// Fatal codes. Zero is reserved.
const (
	// FatalCorrupt reports an undecodable frame (ErrCorrupt); the
	// connection's interning state is unrecoverable.
	FatalCorrupt FatalCode = 1
	// FatalOversized reports a frame beyond the size limits
	// (ErrOversized).
	FatalOversized FatalCode = 2
	// FatalTruncated reports a stream that ended mid-frame
	// (ErrTruncated).
	FatalTruncated FatalCode = 3
	// FatalClosed reports an ingest server that is shutting down.
	FatalClosed FatalCode = 4
	// FatalVersion reports a frame carrying a wire format version the
	// server does not speak (ErrVersion) — the client must upgrade (or
	// downgrade) before reconnecting.
	FatalVersion FatalCode = 5
)

// String names the code ("corrupt", "oversized", "truncated", "closed",
// "version"); unknown values render as "fatal(N)".
func (c FatalCode) String() string {
	switch c {
	case FatalCorrupt:
		return "corrupt"
	case FatalOversized:
		return "oversized"
	case FatalTruncated:
		return "truncated"
	case FatalClosed:
		return "closed"
	case FatalVersion:
		return "version"
	}
	return fmt.Sprintf("fatal(%d)", uint8(c))
}

// Nack is one refused event within a frame: the 0-based event index and
// the typed reason.
type Nack struct {
	// Index is the event's position within its frame.
	Index uint32
	// Code is the refusal reason.
	Code NackCode
}

// AppendAck appends one ACK response (possibly carrying NACKs) to dst.
// An empty nacks slice is the 2-byte all-accepted response.
func AppendAck(dst []byte, nacks []Nack) []byte {
	dst = append(dst[:len(dst)], respAck)
	dst = appendUvarint(dst, uint64(len(nacks)))
	for _, n := range nacks {
		dst = appendUvarint(dst, uint64(n.Index))
		dst = append(dst[:len(dst)], byte(n.Code))
	}
	return dst
}

// AppendFatal appends one NAK (connection-fatal) response to dst.
func AppendFatal(dst []byte, code FatalCode) []byte {
	return append(dst[:len(dst)], respFatal, byte(code))
}

// Response is one decoded server response: either a per-frame ACK with
// its NACK list, or a connection-fatal NAK.
type Response struct {
	// Fatal reports a NAK response; Code then says why and the
	// connection is dead.
	Fatal bool
	// Code is the fatal reason (only when Fatal).
	Code FatalCode
	// Nacks are the frame's refused events (only when !Fatal), in index
	// order as the server emitted them.
	Nacks []Nack
}

// ReadResponse reads one response off r, reusing nackBuf for the NACK
// list. io.EOF at a response boundary passes through; mid-response ends
// are ErrTruncated.
func ReadResponse(r io.ByteReader, nackBuf []Nack) (Response, error) {
	t, err := r.ReadByte()
	if err != nil {
		if err == io.EOF {
			return Response{}, io.EOF
		}
		return Response{}, fmt.Errorf("%w: response type: %v", ErrTruncated, err)
	}
	switch t {
	case respFatal:
		c, err := r.ReadByte()
		if err != nil {
			return Response{}, fmt.Errorf("%w: fatal code: %v", ErrTruncated, err)
		}
		return Response{Fatal: true, Code: FatalCode(c)}, nil
	case respAck:
		n, err := readStreamUvarint(r)
		if err != nil {
			return Response{}, err
		}
		if n > MaxBatch {
			return Response{}, fmt.Errorf("%w: %d NACKs exceeds MaxBatch %d", ErrOversized, n, MaxBatch)
		}
		nacks := nackBuf[:0]
		for i := uint64(0); i < n; i++ {
			idx, err := readStreamUvarint(r)
			if err != nil {
				return Response{}, err
			}
			if idx > MaxBatch {
				return Response{}, fmt.Errorf("%w: NACK index %d exceeds MaxBatch %d", ErrCorrupt, idx, MaxBatch)
			}
			c, err := r.ReadByte()
			if err != nil {
				return Response{}, fmt.Errorf("%w: NACK code: %v", ErrTruncated, err)
			}
			nacks = append(nacks, Nack{Index: uint32(idx), Code: NackCode(c)})
		}
		return Response{Nacks: nacks}, nil
	}
	return Response{}, fmt.Errorf("%w: unknown response type %#02x", ErrCorrupt, t)
}
