// Command ganalyze evaluates the design of a gesture set — the concern the
// paper's evaluation opens with ("It is very easy to design a gesture set
// that does not lend itself well to eager recognition"). It reports
// pairwise class separation, per-class eagerness, prefix-confusion
// structure, and design warnings (e.g. figure 8's note gestures, whose
// prefix structure it detects automatically).
//
// Usage:
//
//	ganalyze -set notes            # analyze a built-in synthetic set
//	ganalyze -in examples.json     # analyze recorded examples
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/gesture"
	"repro/internal/synth"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ganalyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	setName := fs.String("set", "", "built-in set: ud|eight|gdp|notes")
	in := fs.String("in", "", "gesture set JSON to analyze")
	n := fs.Int("n", 15, "examples per class for built-in sets")
	seed := fs.Int64("seed", 42, "generator seed for built-in sets")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var set *gesture.Set
	switch {
	case *in != "":
		var err error
		set, err = gesture.LoadFile(*in)
		if err != nil {
			fmt.Fprintf(stderr, "ganalyze: %v\n", err)
			return 1
		}
	case *setName != "":
		var classes []synth.Class
		switch *setName {
		case "ud":
			classes = synth.UDClasses()
		case "eight":
			classes = synth.EightDirectionClasses()
		case "gdp":
			classes = synth.GDPClasses()
		case "notes":
			classes = synth.NoteClasses()
		default:
			fmt.Fprintf(stderr, "ganalyze: unknown set %q\n", *setName)
			return 2
		}
		set, _ = synth.NewGenerator(synth.DefaultParams(*seed)).Set(*setName, classes, *n)
	default:
		fmt.Fprintln(stderr, "ganalyze: need -set or -in")
		fs.Usage()
		return 2
	}

	rep, err := analysis.Analyze(set, analysis.DefaultOptions())
	if err != nil {
		fmt.Fprintf(stderr, "ganalyze: %v\n", err)
		return 1
	}
	fmt.Fprint(stdout, rep.Format())
	return 0
}
