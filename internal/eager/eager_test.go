package eager

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/gesture"
	"repro/internal/synth"
)

func genSets(classes []synth.Class, trainN, testN int, seed int64) (*gesture.Set, *gesture.Set, []synth.Sample) {
	trainSet, _ := synth.NewGenerator(synth.DefaultParams(seed)).Set("train", classes, trainN)
	testSet, meta := synth.NewGenerator(synth.DefaultParams(seed+1000)).Set("test", classes, testN)
	return trainSet, testSet, meta
}

func mustTrain(t *testing.T, set *gesture.Set, opts Options) (*Recognizer, *Report) {
	t.Helper()
	r, rep, err := Train(set, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r, rep
}

func TestUDPipelineStages(t *testing.T) {
	// The paper's pedagogical example (figures 5-7).
	trainSet, _, _ := genSets(synth.UDClasses(), 15, 1, 11)
	r, rep := mustTrain(t, trainSet, DefaultOptions())

	if rep.Subgestures == 0 || rep.Complete == 0 || rep.Incomplete == 0 {
		t.Fatalf("degenerate labelling: %+v", rep)
	}
	// Both classes share the horizontal prefix, so incomplete subgestures
	// must exist for both; the 2C partition should have up to 4 classes.
	if rep.AUCClasses < 3 || rep.AUCClasses > 4 {
		t.Errorf("AUC classes = %d, want 3..4 for U/D", rep.AUCClasses)
	}
	if rep.MoveThreshold <= 0 {
		t.Errorf("move threshold = %v, want > 0", rep.MoveThreshold)
	}
	// Figure 5 shows accidentally complete subgestures along the horizontal
	// segment of D examples; the move step must find some.
	if rep.MovedAccidental == 0 {
		t.Error("no accidentally complete subgestures moved; fig. 6 behaviour not reproduced")
	}
	// And the recognizer must still classify U/D correctly and eagerly.
	_, testSet, _ := genSets(synth.UDClasses(), 1, 20, 12)
	correct, sumFired, sumLen := 0, 0, 0
	for _, e := range testSet.Examples {
		class, firedAt, err := r.Run(e.Gesture)
		if err != nil {
			t.Fatal(err)
		}
		if class == e.Class {
			correct++
		}
		sumFired += firedAt
		sumLen += e.Gesture.Len()
	}
	if acc := float64(correct) / float64(testSet.Len()); acc < 0.9 {
		t.Errorf("U/D eager accuracy = %.2f", acc)
	}
	if eagerness := float64(sumFired) / float64(sumLen); eagerness > 0.95 {
		t.Errorf("U/D eagerness = %.2f of points; not eager at all", eagerness)
	}
}

func TestConservatismOnTrainingData(t *testing.T) {
	// Figure 7's property: after the tweak pass the AUC never labels an
	// ambiguous (incomplete) training subgesture as unambiguous.
	for _, tc := range []struct {
		name    string
		classes []synth.Class
	}{
		{"ud", synth.UDClasses()},
		{"eight", synth.EightDirectionClasses()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			trainSet, _, _ := genSets(tc.classes, 10, 1, 21)
			r, _ := mustTrain(t, trainSet, DefaultOptions())
			subs, err := LabelSubgestures(trainSet, r.Full, r.Opts.MinSubgesture)
			if err != nil {
				t.Fatal(err)
			}
			thr := MoveThreshold(subs, r.Full, r.Opts.MoveThresholdFrac)
			MoveAccidentals(subs, r.Full, thr)
			violations := 0
			for i := range subs {
				s := &subs[i]
				if s.Complete && !s.Moved {
					continue
				}
				name, _, err := r.AUC.Classify(s.Features)
				if err != nil {
					t.Fatal(err)
				}
				if IsCompleteSet(name) {
					violations++
				}
			}
			if violations != 0 {
				t.Errorf("%d ambiguous training subgestures judged unambiguous", violations)
			}
		})
	}
}

func TestEagerEightDirections(t *testing.T) {
	// Paper fig. 9: eager 97.0% vs full 99.2%; 67.9% of points examined.
	// Shape targets: eager within 8 points of full, both high; eagerness
	// meaningfully below 100%.
	classes := synth.EightDirectionClasses()
	trainSet, testSet, _ := genSets(classes, 10, 30, 31)
	r, _ := mustTrain(t, trainSet, DefaultOptions())

	fullAcc, _, err := r.Full.Accuracy(testSet)
	if err != nil {
		t.Fatal(err)
	}
	correct, sumFired, sumLen := 0, 0, 0
	for _, e := range testSet.Examples {
		class, firedAt, err := r.Run(e.Gesture)
		if err != nil {
			t.Fatal(err)
		}
		if class == e.Class {
			correct++
		}
		sumFired += firedAt
		sumLen += e.Gesture.Len()
	}
	eagerAcc := float64(correct) / float64(testSet.Len())
	eagerness := float64(sumFired) / float64(sumLen)

	if fullAcc < 0.95 {
		t.Errorf("full accuracy = %.3f", fullAcc)
	}
	if eagerAcc < 0.85 {
		t.Errorf("eager accuracy = %.3f", eagerAcc)
	}
	if eagerAcc > fullAcc+0.02 {
		t.Errorf("eager (%.3f) should not beat full (%.3f)", eagerAcc, fullAcc)
	}
	if eagerness > 0.92 {
		t.Errorf("eagerness = %.3f of points seen; want meaningfully below 1", eagerness)
	}
	if eagerness < 0.3 {
		t.Errorf("eagerness = %.3f implausibly eager; conservatism suspect", eagerness)
	}
}

func TestNotesNeverEager(t *testing.T) {
	// Paper fig. 8: every note gesture is a prefix of the next, so the
	// recognizer must stay ambiguous essentially to the end for all classes
	// that have an extension.
	classes := synth.NoteClasses()
	trainSet, testSet, _ := genSets(classes, 10, 20, 41)
	r, _ := mustTrain(t, trainSet, DefaultOptions())

	sumFired, sumLen := 0, 0
	prefixFired := 0 // early fires on classes that are strict prefixes
	for _, e := range testSet.Examples {
		_, firedAt, err := r.Run(e.Gesture)
		if err != nil {
			t.Fatal(err)
		}
		sumFired += firedAt
		sumLen += e.Gesture.Len()
		if e.Class != "sixtyfourth" && firedAt < e.Gesture.Len()*3/4 {
			prefixFired++
		}
	}
	eagerness := float64(sumFired) / float64(sumLen)
	if eagerness < 0.85 {
		t.Errorf("note-gesture eagerness = %.3f; should be near 1 (not amenable)", eagerness)
	}
	// Allow a little slack for jitter, but early fires on prefix classes
	// should be rare.
	if frac := float64(prefixFired) / float64(testSet.Len()); frac > 0.1 {
		t.Errorf("%.0f%% of prefix-class notes fired early", frac*100)
	}
}

func TestEagerGDP(t *testing.T) {
	// Paper fig. 10: full 99.7% vs eager 93.5%; 60.5% of points examined.
	classes := synth.GDPClasses()
	trainSet, testSet, _ := genSets(classes, 10, 30, 51)
	r, _ := mustTrain(t, trainSet, DefaultOptions())

	fullAcc, _, err := r.Full.Accuracy(testSet)
	if err != nil {
		t.Fatal(err)
	}
	correct, sumFired, sumLen := 0, 0, 0
	for _, e := range testSet.Examples {
		class, firedAt, err := r.Run(e.Gesture)
		if err != nil {
			t.Fatal(err)
		}
		if class == e.Class {
			correct++
		}
		sumFired += firedAt
		sumLen += e.Gesture.Len()
	}
	eagerAcc := float64(correct) / float64(testSet.Len())
	eagerness := float64(sumFired) / float64(sumLen)
	if fullAcc < 0.95 {
		t.Errorf("GDP full accuracy = %.3f", fullAcc)
	}
	if eagerAcc < 0.80 {
		t.Errorf("GDP eager accuracy = %.3f", eagerAcc)
	}
	if eagerness > 0.97 {
		t.Errorf("GDP eagerness = %.3f; want below 1", eagerness)
	}
}

func TestDoneRespectsMinSubgesture(t *testing.T) {
	trainSet, _, _ := genSets(synth.UDClasses(), 10, 1, 61)
	r, _ := mustTrain(t, trainSet, DefaultOptions())
	g := trainSet.Examples[0].Gesture
	done, err := r.Done(g.Sub(2))
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Error("Done fired below MinSubgesture")
	}
}

func TestSessionSingleFire(t *testing.T) {
	trainSet, testSet, _ := genSets(synth.EightDirectionClasses(), 10, 2, 71)
	r, _ := mustTrain(t, trainSet, DefaultOptions())
	for _, e := range testSet.Examples {
		s, err := r.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		fires := 0
		for _, p := range e.Gesture.Points {
			fired, class, err := s.Add(p)
			if err != nil {
				t.Fatal(err)
			}
			if fired {
				fires++
				if class == "" {
					t.Fatal("fired with empty class")
				}
			}
		}
		if fires > 1 {
			t.Fatalf("session fired %d times", fires)
		}
		final, err := s.End()
		if err != nil {
			t.Fatal(err)
		}
		if final == "" {
			t.Fatal("End returned empty class")
		}
		if !s.Decided() || s.Class() != final {
			t.Fatal("session state inconsistent after End")
		}
		if s.PointCount() != e.Gesture.Len() {
			t.Fatalf("PointCount = %d, want %d", s.PointCount(), e.Gesture.Len())
		}
	}
}

func TestRunMatchesSession(t *testing.T) {
	trainSet, testSet, _ := genSets(synth.EightDirectionClasses(), 10, 3, 81)
	r, _ := mustTrain(t, trainSet, DefaultOptions())
	for _, e := range testSet.Examples {
		class, firedAt, err := r.Run(e.Gesture)
		if err != nil {
			t.Fatal(err)
		}
		if firedAt < 1 || firedAt > e.Gesture.Len() {
			t.Fatalf("firedAt = %d out of range", firedAt)
		}
		if class == "" {
			t.Fatal("empty class")
		}
		// Determinism.
		c2, f2, err := r.Run(e.Gesture)
		if err != nil {
			t.Fatal(err)
		}
		if c2 != class || f2 != firedAt {
			t.Fatal("Run not deterministic")
		}
	}
}

func TestTrainOptionValidation(t *testing.T) {
	set, _, _ := genSets(synth.UDClasses(), 5, 1, 91)
	bad := DefaultOptions()
	bad.MinSubgesture = 1
	if _, _, err := Train(set, bad); err == nil {
		t.Error("MinSubgesture=1 accepted")
	}
	bad = DefaultOptions()
	bad.AmbiguityBias = 0.5
	if _, _, err := Train(set, bad); err == nil {
		t.Error("AmbiguityBias<1 accepted")
	}
	bad = DefaultOptions()
	bad.MoveThresholdFrac = 1.5
	if _, _, err := Train(set, bad); err == nil {
		t.Error("MoveThresholdFrac>1 accepted")
	}
	if _, _, err := Train(&gesture.Set{}, DefaultOptions()); err == nil {
		t.Error("empty set accepted")
	}
}

func TestTooShortGestures(t *testing.T) {
	set := &gesture.Set{}
	g := synth.NewGenerator(synth.DefaultParams(1))
	var dot synth.Class
	for _, c := range synth.GDPClasses() {
		if c.Name == "dot" {
			dot = c
		}
	}
	for i := 0; i < 5; i++ {
		s := g.Sample(dot)
		set.Add("dot", s.G)
		s2 := g.Sample(dot)
		set.Add("dot2", s2.G)
	}
	// All gestures shorter than MinSubgesture: no subgestures to label.
	if _, _, err := Train(set, DefaultOptions()); err == nil {
		t.Error("expected error when no subgestures can be labelled")
	}
}

func TestSetNames(t *testing.T) {
	s := Subgesture{Class: "U", Pred: "D", Complete: true}
	if s.SetName() != "C-U" {
		t.Errorf("complete set name = %s", s.SetName())
	}
	s.Moved = true
	if s.SetName() != "I-D" {
		t.Errorf("moved set name = %s", s.SetName())
	}
	s = Subgesture{Class: "U", Pred: "D", Complete: false}
	if s.SetName() != "I-D" {
		t.Errorf("incomplete set name = %s", s.SetName())
	}
	if !IsCompleteSet("C-x") || IsCompleteSet("I-x") || IsCompleteSet("x") {
		t.Error("IsCompleteSet wrong")
	}
}

func TestLabelSubgestureInvariants(t *testing.T) {
	trainSet, _, _ := genSets(synth.UDClasses(), 8, 1, 101)
	r, _ := mustTrain(t, trainSet, DefaultOptions())
	subs, err := LabelSubgestures(trainSet, r.Full, 4)
	if err != nil {
		t.Fatal(err)
	}
	byExample := map[int][]Subgesture{}
	for _, s := range subs {
		byExample[s.Example] = append(byExample[s.Example], s)
	}
	for ei, list := range byExample {
		// The final (full-length) subgesture must be predicted correctly by
		// construction of a well-trained classifier on its own training
		// data — and completeness must be a suffix-closed property.
		last := list[len(list)-1]
		if last.Len != trainSet.Examples[ei].Gesture.Len() {
			t.Fatalf("example %d: last labelled prefix is not the full gesture", ei)
		}
		seenComplete := false
		for _, s := range list {
			if seenComplete && !s.Complete {
				t.Fatalf("example %d: completeness not suffix-closed", ei)
			}
			if s.Complete {
				seenComplete = true
				if s.Pred != s.Class {
					t.Fatalf("example %d: complete subgesture predicted %s != class %s", ei, s.Pred, s.Class)
				}
			}
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	trainSet, testSet, _ := genSets(synth.UDClasses(), 8, 5, 111)
	r, _ := mustTrain(t, trainSet, DefaultOptions())
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	r2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range testSet.Examples {
		c1, f1, err1 := r.Run(e.Gesture)
		c2, f2, err2 := r2.Run(e.Gesture)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if c1 != c2 || f1 != f2 {
			t.Fatal("round-tripped recognizer disagrees")
		}
	}
	if _, err := ReadJSON(strings.NewReader("{}")); err == nil {
		t.Error("incomplete JSON accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	trainSet, _, _ := genSets(synth.UDClasses(), 5, 1, 121)
	r, _ := mustTrain(t, trainSet, DefaultOptions())
	path := t.TempDir() + "/eager.json"
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path + ".nope"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestAblationTwoClassUnderperforms(t *testing.T) {
	// Section 4.4's claim: a two-class ambiguous/unambiguous discriminator
	// "does not work very well" because the unambiguous set is multimodal.
	// We verify the reproduction preserves the ordering: the 2C-class AUC
	// yields at least as accurate an eager recognizer as the 2-class one.
	classes := synth.EightDirectionClasses()
	trainSet, testSet, _ := genSets(classes, 10, 30, 131)

	run := func(opts Options) (acc float64) {
		r, _, err := Train(trainSet, opts)
		if err != nil {
			t.Fatal(err)
		}
		correct := 0
		for _, e := range testSet.Examples {
			class, _, err := r.Run(e.Gesture)
			if err != nil {
				t.Fatal(err)
			}
			if class == e.Class {
				correct++
			}
		}
		return float64(correct) / float64(testSet.Len())
	}
	multi := run(DefaultOptions())
	two := DefaultOptions()
	two.TwoClassAUC = true
	twoAcc := run(two)
	if twoAcc > multi+0.02 {
		t.Errorf("two-class AUC (%.3f) outperformed 2C-class AUC (%.3f); paper ordering violated", twoAcc, multi)
	}
}

func TestBiasIncreasesCaution(t *testing.T) {
	// Raising the ambiguity bias can only delay firing (or leave it
	// unchanged) on any given gesture.
	classes := synth.EightDirectionClasses()
	trainSet, testSet, _ := genSets(classes, 10, 10, 141)
	low := DefaultOptions()
	low.AmbiguityBias = 1
	high := DefaultOptions()
	high.AmbiguityBias = 25
	rLow, _ := mustTrain(t, trainSet, low)
	rHigh, _ := mustTrain(t, trainSet, high)
	sumLow, sumHigh := 0, 0
	for _, e := range testSet.Examples {
		_, f1, err1 := rLow.Run(e.Gesture)
		_, f2, err2 := rHigh.Run(e.Gesture)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		sumLow += f1
		sumHigh += f2
	}
	if sumHigh < sumLow {
		t.Errorf("higher bias fired earlier on aggregate: %d vs %d points", sumHigh, sumLow)
	}
}

func TestRequireAgreementNeverLessAccurate(t *testing.T) {
	classes := synth.EightDirectionClasses()
	trainSet, testSet, _ := genSets(classes, 10, 20, 151)
	rPaper, _ := mustTrain(t, trainSet, DefaultOptions())
	gated := DefaultOptions()
	gated.RequireAgreement = true
	rGated, _ := mustTrain(t, trainSet, gated)

	var accPaper, accGated, seenPaper, seenGated int
	for _, e := range testSet.Examples {
		c1, f1, err1 := rPaper.Run(e.Gesture)
		c2, f2, err2 := rGated.Run(e.Gesture)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if c1 == e.Class {
			accPaper++
		}
		if c2 == e.Class {
			accGated++
		}
		seenPaper += f1
		seenGated += f2
		// Gating can only delay firing on any individual gesture.
		if f2 < f1 {
			t.Fatalf("agreement gating fired earlier (%d < %d) on a %s gesture", f2, f1, e.Class)
		}
	}
	if accGated < accPaper {
		t.Errorf("gated accuracy %d below paper rule %d", accGated, accPaper)
	}
}

func TestTrainingDeterministic(t *testing.T) {
	trainSet, testSet, _ := genSets(synth.EightDirectionClasses(), 8, 5, 161)
	r1, rep1 := mustTrain(t, trainSet, DefaultOptions())
	r2, rep2 := mustTrain(t, trainSet, DefaultOptions())
	if *rep1 != *rep2 {
		t.Fatalf("training reports differ:\n%+v\n%+v", rep1, rep2)
	}
	if !reflect.DeepEqual(r1.AUC.Consts, r2.AUC.Consts) ||
		!reflect.DeepEqual(r1.AUC.Weights, r2.AUC.Weights) ||
		!reflect.DeepEqual(r1.Full.C.Weights, r2.Full.C.Weights) {
		t.Fatal("trained parameters differ between identical runs")
	}
	for _, e := range testSet.Examples {
		c1, f1, err1 := r1.Run(e.Gesture)
		c2, f2, err2 := r2.Run(e.Gesture)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if c1 != c2 || f1 != f2 {
			t.Fatalf("recognizers disagree on identical training")
		}
	}
}
