package main

import (
	"bytes"
	"testing"

	"repro/internal/gesture"
)

func TestGenToStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-set", "eight", "-n", "3", "-seed", "1"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	set, err := gesture.ReadJSON(&stdout)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 24 || len(set.Classes()) != 8 {
		t.Errorf("set: %d examples, %d classes", set.Len(), len(set.Classes()))
	}
}

func TestGenToFile(t *testing.T) {
	out := t.TempDir() + "/set.json"
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-set", "notes", "-n", "2", "-o", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	set, err := gesture.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 10 {
		t.Errorf("set size %d", set.Len())
	}
}

func TestGenDeterministic(t *testing.T) {
	var a, b, stderr bytes.Buffer
	run([]string{"-set", "ud", "-n", "2", "-seed", "9"}, &a, &stderr)
	run([]string{"-set", "ud", "-n", "2", "-seed", "9"}, &b, &stderr)
	if a.String() != b.String() {
		t.Error("same seed produced different output")
	}
}

func TestGenLoopProbFlag(t *testing.T) {
	var a, b, stderr bytes.Buffer
	run([]string{"-set", "eight", "-n", "2", "-seed", "3", "-loop-prob", "0"}, &a, &stderr)
	run([]string{"-set", "eight", "-n", "2", "-seed", "3", "-loop-prob", "1"}, &b, &stderr)
	if a.String() == b.String() {
		t.Error("loop-prob flag had no effect")
	}
}

func TestGenErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-set", "bogus"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown set: exit %d", code)
	}
	if code := run([]string{"-nonsense"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit %d", code)
	}
	if code := run([]string{"-o", "/no/such/dir/x.json"}, &stdout, &stderr); code != 1 {
		t.Errorf("bad output path: exit %d", code)
	}
}
