package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestScoreDemoScript(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	// The demo inserts three notes, drags a fourth, and scratches one out;
	// the log lines record each interaction.
	if !strings.Contains(out, "log:") {
		t.Errorf("no log lines in output:\n%s", out)
	}
	// render prints the downsampled staff, which always contains staff lines.
	if len(strings.Split(out, "\n")) < 10 {
		t.Errorf("rendered output too short:\n%s", out)
	}
}

func TestScoreScriptFile(t *testing.T) {
	dir := t.TempDir()
	script := filepath.Join(dir, "score.txt")
	src := "note quarter 100 2\nrender\nlog\n"
	if err := os.WriteFile(script, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-script", script, "-shrink", "0"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "log:") {
		t.Errorf("no log line after note insert:\n%s", stdout.String())
	}
}

func TestScoreErrors(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-script", filepath.Join(dir, "missing.txt")}, &stdout, &stderr); code != 1 {
		t.Errorf("missing script: exit %d", code)
	}
	for name, src := range map[string]string{
		"unknown command":  "bogus 1 2\n",
		"unknown duration": "note wholehog 100 2\n",
		"missing argument": "note quarter\n",
		"bad number":       "note quarter abc 2\n",
	} {
		script := filepath.Join(dir, "bad.txt")
		if err := os.WriteFile(script, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		stdout.Reset()
		stderr.Reset()
		if code := run([]string{"-script", script}, &stdout, &stderr); code != 1 {
			t.Errorf("%s: exit %d, stderr %q", name, code, stderr.String())
		}
	}
	if code := run([]string{"-nosuchflag"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit %d", code)
	}
}
