package gscore

import (
	"fmt"

	"repro/internal/display"
	"repro/internal/eager"
	"repro/internal/geom"
	"repro/internal/grandma"
	"repro/internal/raster"
	"repro/internal/synth"
)

// EditorClasses returns the score editor's gesture set: the five note
// gestures of figure 8 plus a scratch gesture for deletion. Because the
// note gestures are prefixes of one another, this set is the paper's
// canonical example of one NOT amenable to eager recognition — which is
// why the editor defaults to the timeout phase transition.
func EditorClasses() []synth.Class {
	classes := synth.NoteClasses()
	classes = append(classes, synth.Class{
		// A mostly-horizontal zigzag: deliberately unlike the vertical
		// stem-and-flag structure of the note gestures.
		Name: "scratch",
		Skeleton: []geom.Point{
			{X: 0, Y: 0}, {X: 44, Y: 10}, {X: 6, Y: 20}, {X: 50, Y: 30},
		},
		DecisionVertex: -1,
	})
	return classes
}

// Config configures the editor.
type Config struct {
	// Width and Height size the canvas. Defaults 600 x 200.
	Width, Height int
	// Staff geometry; the zero value gets a sensible default spanning the
	// canvas.
	Staff Staff
	// Eager switches the phase transition to eager recognition. The
	// default is the 200 ms timeout transition: the note gestures are
	// prefixes of one another, the paper's canonical case where eager
	// recognition cannot help (figure 8).
	Eager bool
	// Timeout overrides the 200 ms motionless timeout.
	Timeout float64
	// Recognizer supplies a pre-trained recognizer over EditorClasses.
	Recognizer *eager.Recognizer
	// TrainSeed and TrainPerClass configure training when Recognizer is
	// nil (defaults 1 and 15).
	TrainSeed     int64
	TrainPerClass int
}

// App is the running editor.
type App struct {
	Score   *Score
	Canvas  *raster.Canvas
	Session *grandma.Session
	Handler *grandma.GestureHandler
	Root    *grandma.View
	Log     []string
	// PickTol is the note-picking tolerance in pixels.
	PickTol float64
}

// New builds a score editor, training a recognizer if none is supplied.
func New(cfg Config) (*App, error) {
	if cfg.Width <= 0 {
		cfg.Width = 600
	}
	if cfg.Height <= 0 {
		cfg.Height = 200
	}
	if cfg.Staff == (Staff{}) {
		cfg.Staff = Staff{
			Left:  20,
			Right: float64(cfg.Width) - 20,
			BaseY: float64(cfg.Height) * 0.7,
			Gap:   12,
		}
	}
	rec := cfg.Recognizer
	if rec == nil {
		seed := cfg.TrainSeed
		if seed == 0 {
			seed = 1
		}
		per := cfg.TrainPerClass
		if per == 0 {
			per = 15
		}
		trainSet, _ := synth.NewGenerator(synth.DefaultParams(seed)).Set("gscore-train", EditorClasses(), per)
		var err error
		rec, _, err = eager.Train(trainSet, eager.DefaultOptions())
		if err != nil {
			return nil, fmt.Errorf("gscore: training recognizer: %w", err)
		}
	}

	app := &App{
		Score:   NewScore(cfg.Staff),
		Canvas:  raster.NewCanvas(cfg.Width, cfg.Height),
		PickTol: 8,
	}

	var h *grandma.GestureHandler
	if cfg.Eager {
		h = grandma.NewEagerGestureHandler(rec)
	} else {
		h = grandma.NewGestureHandler(rec.Full, grandma.ModeTimeout)
	}
	h.Timeout = cfg.Timeout
	h.OnRecognized = func(class string, a *grandma.Attrs) {
		app.logf("recognized %s at (%.0f,%.0f)", class, a.StartX, a.StartY)
	}
	app.Handler = h

	root := grandma.NewView("gscore", nil)
	root.Frame = geom.Rect{MinX: 0, MinY: 0, MaxX: float64(cfg.Width), MaxY: float64(cfg.Height)}
	root.DrawFunc = func(c *raster.Canvas, v *grandma.View) { app.Score.Draw(c) }
	root.AddHandler(h)
	app.Root = root
	app.Session = grandma.NewSession(root, app.Canvas)

	app.registerSemantics()
	return app, nil
}

func (a *App) logf(format string, args ...any) {
	a.Log = append(a.Log, fmt.Sprintf(format, args...))
}

// noteDrag carries the manipulation of a freshly inserted note — the
// introduction's "dragged by the mouse but snapping to legal destinations"
// feedback. The note stays where the gesture started until the mouse
// actually moves after the phase transition; from then on it tracks the
// cursor, snapped to staff lines and spaces.
type noteDrag struct {
	note         *Note
	lastX, lastY float64
	moved        bool
}

func (st *noteDrag) track(sc *Score, x, y float64) {
	//lint:ignore floateq skip no-op drag events: coordinates are compared to their own previous exact values
	if x == st.lastX && y == st.lastY {
		return
	}
	st.lastX, st.lastY = x, y
	st.moved = true
	sc.Move(st.note, x, y)
}

// registerSemantics wires the note-insertion and scratch-deletion
// semantics. Note insertion demonstrates the introduction's snapping
// feedback: during manipulation the new note follows the mouse but snaps
// to staff lines and spaces.
func (a *App) registerSemantics() {
	for _, d := range []Duration{Quarter, Eighth, Sixteenth, ThirtySecond, SixtyFourth} {
		dur := d
		a.Handler.Register(string(dur), &grandma.Semantics{
			Recog: func(at *grandma.Attrs) any {
				// The note is created at the gesture START (the head of
				// the drawn note); manipulation then drags it relatively,
				// snapping to staff lines and spaces.
				step := a.Score.Staff.YToStep(at.StartY)
				n := a.Score.Add(at.StartX, step, dur)
				a.logf("insert %s", n)
				return &noteDrag{note: n, lastX: at.CurrentX, lastY: at.CurrentY}
			},
			Manip: func(at *grandma.Attrs) {
				if st, ok := at.Recog.(*noteDrag); ok {
					st.track(a.Score, at.CurrentX, at.CurrentY)
				}
			},
			Done: func(at *grandma.Attrs) {
				if st, ok := at.Recog.(*noteDrag); ok {
					a.logf("placed %s", st.note)
				}
			},
		})
	}
	a.Handler.Register("scratch", &grandma.Semantics{
		Recog: func(at *grandma.Attrs) any {
			if n := a.Score.At(at.StartX, at.StartY, a.PickTol); n != nil {
				a.Score.Remove(n)
				a.logf("delete %s", n)
			} else {
				a.logf("delete: nothing at (%.0f,%.0f)", at.StartX, at.StartY)
			}
			return nil
		},
		Manip: func(at *grandma.Attrs) {
			if n := a.Score.At(at.CurrentX, at.CurrentY, a.PickTol); n != nil {
				a.Score.Remove(n)
				a.logf("delete (touch) %s", n)
			}
		},
	})
}

// shiftToNow rebases a path after the session's current time.
func (a *App) shiftToNow(p geom.Path) geom.Path {
	if len(p) == 0 {
		return p
	}
	return p.TimeShift(a.Session.Display.Now() + 0.05 - p[0].T)
}

// PlayGesture replays a gesture as a press-draw-release interaction.
func (a *App) PlayGesture(p geom.Path) {
	p = a.shiftToNow(p)
	a.Session.Replay(display.StrokeTrace(p, display.LeftButton, 0.01))
}

// PlayTwoPhase replays a gesture, a motionless hold, then manipulation
// moves, then release.
func (a *App) PlayTwoPhase(gesturePath geom.Path, hold float64, manip []geom.Point) {
	p := a.shiftToNow(gesturePath)
	evs := display.StrokeTrace(p, display.LeftButton, 0)
	evs = evs[:len(evs)-1]
	last := p[len(p)-1]
	t := last.T + hold
	x, y := last.X, last.Y
	for _, m := range manip {
		t += 0.02
		x, y = m.X, m.Y
		evs = append(evs, display.Event{Kind: display.MouseMove, X: x, Y: y, Time: t})
	}
	evs = append(evs, display.Event{Kind: display.MouseUp, X: x, Y: y, Time: t + 0.02})
	a.Session.Replay(evs)
}

// Render repaints and returns the canvas as ASCII.
func (a *App) Render() string {
	a.Session.Redraw()
	return a.Canvas.String()
}
