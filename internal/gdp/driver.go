package gdp

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/synth"
)

// Driver executes a small text script against a GDP instance, synthesizing
// gestures on demand — the engine behind cmd/gdp and a convenient way to
// script reproducible interaction sequences in tests.
//
// Script commands (one per line, # comments):
//
//	gesture <class> <x> <y>                 play a gesture anchored at (x,y)
//	twophase <class> <x> <y> <mx> <my>      gesture, hold, manipulate to (mx,my)
//	rect <x1> <y1> <x2> <y2>                add a rectangle directly
//	line <x1> <y1> <x2> <y2>                add a line directly
//	ellipse <cx> <cy> <rx> <ry>             add an ellipse directly
//	dot <x> <y>                             add a dot directly
//	text <x> <y> <string>                   add text directly
//	settext <string>                        set the next text gesture's string
//	save <path>                             write the scene as JSON
//	load <path>                             replace the scene from JSON
//	render                                  print the canvas
//	log                                     print the interaction log
//	clear                                   clear the scene
type Driver struct {
	App *App
	Gen *synth.Generator
	// Out receives render and log output.
	Out io.Writer
	// Shrink downsamples rendered output by (Shrink, 2*Shrink); 0 prints
	// the raw canvas.
	Shrink  int
	classes map[string]synth.Class
}

// NewDriver builds a driver over an app and a stroke generator.
func NewDriver(app *App, gen *synth.Generator, out io.Writer) *Driver {
	classes := make(map[string]synth.Class)
	for _, c := range synth.GDPClasses() {
		classes[c.Name] = c
	}
	return &Driver{App: app, Gen: gen, Out: out, classes: classes}
}

// Run executes a whole script; it stops at the first erroring line,
// reporting its 1-based line number.
func (d *Driver) Run(src string) error {
	scanner := bufio.NewScanner(strings.NewReader(src))
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := d.Exec(line); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	return scanner.Err()
}

// Exec executes a single script command.
func (d *Driver) Exec(line string) error {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	cmd, args := fields[0], fields[1:]
	num := func(i int) (float64, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("%s: missing argument %d", cmd, i+1)
		}
		v, err := strconv.ParseFloat(args[i], 64)
		if err != nil {
			return 0, fmt.Errorf("%s: argument %d: %w", cmd, i+1, err)
		}
		return v, nil
	}
	nums := func(n int) ([]float64, error) {
		out := make([]float64, n)
		for i := range out {
			v, err := num(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	switch cmd {
	case "gesture", "twophase":
		if len(args) < 1 {
			return fmt.Errorf("%s: missing class", cmd)
		}
		class, ok := d.classes[args[0]]
		if !ok {
			return fmt.Errorf("unknown gesture class %q", args[0])
		}
		x, err := num(1)
		if err != nil {
			return err
		}
		y, err := num(2)
		if err != nil {
			return err
		}
		p := d.Gen.SampleAt(class, geom.Pt(x, y)).G.Points
		if cmd == "gesture" {
			d.App.PlayGesture(p)
			return nil
		}
		mx, err := num(3)
		if err != nil {
			return err
		}
		my, err := num(4)
		if err != nil {
			return err
		}
		d.App.PlayTwoPhase(p, 0.3, []geom.Point{{X: mx, Y: my}})
		return nil
	case "rect":
		v, err := nums(4)
		if err != nil {
			return err
		}
		d.App.Scene.Add(NewRect(v[0], v[1], v[2], v[3]))
	case "line":
		v, err := nums(4)
		if err != nil {
			return err
		}
		d.App.Scene.Add(NewLine(v[0], v[1], v[2], v[3]))
	case "ellipse":
		v, err := nums(4)
		if err != nil {
			return err
		}
		d.App.Scene.Add(NewEllipse(v[0], v[1], v[2], v[3]))
	case "dot":
		v, err := nums(2)
		if err != nil {
			return err
		}
		d.App.Scene.Add(NewDot(v[0], v[1]))
	case "text":
		v, err := nums(2)
		if err != nil {
			return err
		}
		if len(args) < 3 {
			return fmt.Errorf("text: missing string")
		}
		d.App.Scene.Add(NewText(v[0], v[1], strings.Join(args[2:], " ")))
	case "settext":
		if len(args) < 1 {
			return fmt.Errorf("settext: missing string")
		}
		d.App.NextText = strings.Join(args, " ")
	case "save":
		if len(args) < 1 {
			return fmt.Errorf("save: missing path")
		}
		if err := d.App.Scene.SaveFile(args[0]); err != nil {
			return err
		}
	case "load":
		if len(args) < 1 {
			return fmt.Errorf("load: missing path")
		}
		scene, err := LoadScene(args[0])
		if err != nil {
			return err
		}
		d.App.Scene.Clear()
		for _, sh := range scene.Shapes() {
			d.App.Scene.Add(sh)
		}
	case "render":
		d.App.Render()
		canvas := d.App.Canvas
		if d.Shrink > 0 {
			canvas = canvas.Downsample(d.Shrink, 2*d.Shrink)
		}
		fmt.Fprint(d.Out, canvas.String())
	case "log":
		for _, l := range d.App.Log {
			fmt.Fprintln(d.Out, "log:", l)
		}
	case "clear":
		d.App.Scene.Clear()
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}
