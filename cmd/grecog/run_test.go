package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/eager"
	"repro/internal/recognizer"
	"repro/internal/synth"
)

func fixtures(t *testing.T) (testSet, fullPath, eagerPath string) {
	t.Helper()
	dir := t.TempDir()
	train, _ := synth.NewGenerator(synth.DefaultParams(5)).Set("train", synth.UDClasses(), 10)
	test, _ := synth.NewGenerator(synth.DefaultParams(6)).Set("test", synth.UDClasses(), 5)
	testSet = dir + "/test.json"
	if err := test.SaveFile(testSet); err != nil {
		t.Fatal(err)
	}
	full, err := recognizer.Train(train, recognizer.DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	fullPath = dir + "/full.json"
	if err := full.SaveFile(fullPath); err != nil {
		t.Fatal(err)
	}
	eag, _, err := eager.Train(train, eager.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	eagerPath = dir + "/eager.json"
	if err := eag.SaveFile(eagerPath); err != nil {
		t.Fatal(err)
	}
	return
}

func TestRecogFull(t *testing.T) {
	testSet, fullPath, _ := fixtures(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-rec", fullPath, "-in", testSet, "-v"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "accuracy:") {
		t.Errorf("output: %s", out)
	}
	// Verbose: one line per example plus the summary.
	if strings.Count(out, "points") < 10 {
		t.Errorf("verbose output too short:\n%s", out)
	}
}

func TestRecogEager(t *testing.T) {
	testSet, _, eagerPath := fixtures(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-rec", eagerPath, "-in", testSet, "-eager"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "points examined:") {
		t.Errorf("output: %s", stdout.String())
	}
}

func TestRecogErrors(t *testing.T) {
	testSet, fullPath, _ := fixtures(t)
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("missing flags: exit %d", code)
	}
	if code := run([]string{"-rec", fullPath, "-in", "/no/such.json"}, &stdout, &stderr); code != 1 {
		t.Errorf("missing set: exit %d", code)
	}
	if code := run([]string{"-rec", "/no/such.json", "-in", testSet}, &stdout, &stderr); code != 1 {
		t.Errorf("missing recognizer: exit %d", code)
	}
	// Wrong recognizer kind: eager loader rejects the full-classifier file.
	if code := run([]string{"-rec", fullPath, "-in", testSet, "-eager"}, &stdout, &stderr); code != 1 {
		t.Errorf("kind mismatch: exit %d", code)
	}
}
