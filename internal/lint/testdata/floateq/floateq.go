// Package floateq is a fixture for the floateq analyzer.
package floateq

func compare(a, b float64, xs []float64, n int) bool {
	if a == b { // want `== on float operands`
		return true
	}
	if a != b+1 { // want `!= on float operands`
		return true
	}
	if xs[0] == xs[1] { // want `== on float operands`
		return true
	}

	// Exempt: the NaN idiom.
	if a != a {
		return false
	}
	if xs[n] != xs[n] {
		return false
	}
	// Exempt: exact zero is a sentinel/sparsity test.
	if a == 0 || b != 0.0 {
		return false
	}
	// Exempt: integer comparison is none of our business.
	if n == 3 {
		return false
	}
	//lint:ignore floateq fixture demonstrating the allowlist
	if a == b {
		return true
	}
	bad := a == b // want `== on float operands`
	return bad
}

type vec []float32

func (v vec) eq(w vec) bool {
	return v[0] == w[0] // want `== on float operands`
}
