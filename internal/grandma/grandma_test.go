package grandma

import (
	"testing"

	"repro/internal/display"
	"repro/internal/geom"
	"repro/internal/raster"
)

func TestViewClassInheritance(t *testing.T) {
	base := NewViewClass("base", nil)
	sub := NewViewClass("sub", base)
	h1 := &ClickHandler{}
	h2 := &ClickHandler{}
	base.AddHandler(h1)
	sub.AddHandler(h2)
	hs := sub.Handlers()
	if len(hs) != 2 || hs[0] != EventHandler(h2) || hs[1] != EventHandler(h1) {
		t.Fatalf("inheritance order wrong: %v", hs)
	}
	if !sub.IsA(base) || !sub.IsA(sub) || base.IsA(sub) {
		t.Error("IsA wrong")
	}
}

func TestViewTree(t *testing.T) {
	root := NewView("root", nil)
	a := NewView("a", nil)
	root.AddChild(a)
	if a.Parent() != root || len(root.Children()) != 1 {
		t.Fatal("AddChild broken")
	}
	root.RemoveChild(a)
	if a.Parent() != nil || len(root.Children()) != 0 {
		t.Fatal("RemoveChild broken")
	}
	root.RemoveChild(a) // unknown child: no-op
	root.AddChild(a)
	defer func() {
		if recover() == nil {
			t.Error("double AddChild did not panic")
		}
	}()
	NewView("other", nil).AddChild(a)
}

func TestHitTestTopmost(t *testing.T) {
	root := NewView("root", nil)
	root.Frame = geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	under := NewView("under", nil)
	under.Frame = geom.Rect{MinX: 10, MinY: 10, MaxX: 50, MaxY: 50}
	over := NewView("over", nil)
	over.Frame = geom.Rect{MinX: 30, MinY: 30, MaxX: 70, MaxY: 70}
	over.Z = 1
	root.AddChild(under)
	root.AddChild(over)

	if got := root.HitTest(geom.Pt(40, 40)); got != over {
		t.Errorf("overlap hit = %v, want over", got.Name)
	}
	if got := root.HitTest(geom.Pt(15, 15)); got != under {
		t.Errorf("hit = %v, want under", got.Name)
	}
	if got := root.HitTest(geom.Pt(90, 90)); got != root {
		t.Errorf("background hit = %v, want root", got.Name)
	}
	if got := root.HitTest(geom.Pt(500, 500)); got != nil {
		t.Errorf("miss hit = %v, want nil", got.Name)
	}
	over.Visible = false
	if got := root.HitTest(geom.Pt(40, 40)); got != under {
		t.Errorf("invisible view still hit: %v", got.Name)
	}
}

func TestCustomHitFunc(t *testing.T) {
	v := NewView("circle", nil)
	v.Frame = geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	v.HitFunc = func(p geom.Point, v *View) bool {
		return p.Dist(v.Frame.Center()) <= 5
	}
	if v.HitTest(geom.Pt(1, 1)) != nil {
		t.Error("corner inside circle?")
	}
	if v.HitTest(geom.Pt(5, 5)) != v {
		t.Error("center missed")
	}
}

func TestDrawOrder(t *testing.T) {
	c := raster.NewCanvas(10, 10)
	root := NewView("root", nil)
	lo := NewView("lo", nil)
	lo.Z = 0
	lo.DrawFunc = func(c *raster.Canvas, v *View) { c.Set(5, 5, 'L') }
	hi := NewView("hi", nil)
	hi.Z = 1
	hi.DrawFunc = func(c *raster.Canvas, v *View) { c.Set(5, 5, 'H') }
	root.AddChild(hi)
	root.AddChild(lo)
	root.Draw(c)
	if c.At(5, 5) != 'H' {
		t.Errorf("top glyph = %c, want H", c.At(5, 5))
	}
	hi.Visible = false
	c.Clear()
	root.Draw(c)
	if c.At(5, 5) != 'L' {
		t.Errorf("after hiding hi, glyph = %c", c.At(5, 5))
	}
}

func TestDragHandler(t *testing.T) {
	root := NewView("root", nil)
	root.Frame = geom.Rect{MinX: 0, MinY: 0, MaxX: 200, MaxY: 200}
	box := NewView("box", nil)
	box.Frame = geom.Rect{MinX: 10, MinY: 10, MaxX: 30, MaxY: 30}
	root.AddChild(box)
	moved := 0
	done := false
	box.AddHandler(&DragHandler{
		OnMove: func(v *View, dx, dy float64) { moved++ },
		OnDone: func(v *View) { done = true },
	})
	s := NewSession(root, nil)
	s.Replay(display.DragTrace(geom.Pt(20, 20), geom.Pt(60, 80), 4, 0, 0.2, display.LeftButton))
	want := geom.Rect{MinX: 50, MinY: 70, MaxX: 70, MaxY: 90}
	if box.Frame != want {
		t.Errorf("frame after drag = %+v, want %+v", box.Frame, want)
	}
	if moved != 4 || !done {
		t.Errorf("moved=%d done=%v", moved, done)
	}
	if s.Active() {
		t.Error("interaction still active after mouse-up")
	}
}

func TestDragButtonFilter(t *testing.T) {
	root := NewView("root", nil)
	root.Frame = geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	box := NewView("box", nil)
	box.Frame = geom.Rect{MinX: 0, MinY: 0, MaxX: 20, MaxY: 20}
	root.AddChild(box)
	box.AddHandler(&DragHandler{Button: display.RightButton})
	s := NewSession(root, nil)
	s.Replay(display.DragTrace(geom.Pt(5, 5), geom.Pt(50, 50), 3, 0, 0.1, display.LeftButton))
	if box.Frame.MinX != 0 {
		t.Error("left-button drag moved a right-button-only view")
	}
}

func TestClickHandler(t *testing.T) {
	root := NewView("root", nil)
	root.Frame = geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	clicks := 0
	root.AddHandler(&ClickHandler{Action: func(v *View) { clicks++ }})
	s := NewSession(root, nil)
	// Clean click.
	s.Replay([]display.Event{
		{Kind: display.MouseDown, X: 10, Y: 10, Time: 0},
		{Kind: display.MouseUp, X: 11, Y: 10, Time: 0.05},
	})
	if clicks != 1 {
		t.Fatalf("clicks = %d", clicks)
	}
	// Too much movement: aborted.
	s.Replay([]display.Event{
		{Kind: display.MouseDown, X: 10, Y: 10, Time: 1},
		{Kind: display.MouseMove, X: 40, Y: 40, Time: 1.02},
		{Kind: display.MouseUp, X: 40, Y: 40, Time: 1.05},
	})
	if clicks != 1 {
		t.Fatalf("sloppy click fired: %d", clicks)
	}
}

func TestHandlerPropagation(t *testing.T) {
	// First handler declines via predicate; second accepts. Then: handlers
	// on the child decline entirely and the parent's handler receives the
	// interaction.
	root := NewView("root", nil)
	root.Frame = geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	child := NewView("child", nil)
	child.Frame = geom.Rect{MinX: 0, MinY: 0, MaxX: 50, MaxY: 50}
	root.AddChild(child)

	var order []string
	declining := &ClickHandler{
		Predicate: func(ev display.Event, v *View) bool { order = append(order, "declined"); return false },
		Action:    func(v *View) { t.Error("declining handler fired") },
	}
	accepting := &ClickHandler{Action: func(v *View) { order = append(order, "child") }}
	child.AddHandler(declining)
	child.AddHandler(accepting)
	rootH := &ClickHandler{Action: func(v *View) { order = append(order, "root") }}
	root.AddHandler(rootH)

	s := NewSession(root, nil)
	s.Replay([]display.Event{
		{Kind: display.MouseDown, X: 10, Y: 10, Time: 0},
		{Kind: display.MouseUp, X: 10, Y: 10, Time: 0.01},
	})
	if len(order) != 2 || order[0] != "declined" || order[1] != "child" {
		t.Fatalf("order = %v", order)
	}
	// Outside the child, the root handler takes it.
	s.Replay([]display.Event{
		{Kind: display.MouseDown, X: 80, Y: 80, Time: 1},
		{Kind: display.MouseUp, X: 80, Y: 80, Time: 1.01},
	})
	if order[len(order)-1] != "root" {
		t.Fatalf("order = %v", order)
	}
}

func TestClassLevelHandlerShared(t *testing.T) {
	cls := NewViewClass("button", nil)
	clicks := map[string]int{}
	cls.AddHandler(&ClickHandler{Action: func(v *View) { clicks[v.Name]++ }})
	root := NewView("root", nil)
	root.Frame = geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	b1 := NewView("b1", cls)
	b1.Frame = geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	b2 := NewView("b2", cls)
	b2.Frame = geom.Rect{MinX: 20, MinY: 0, MaxX: 30, MaxY: 10}
	root.AddChild(b1)
	root.AddChild(b2)
	s := NewSession(root, nil)
	click := func(x, y float64, at float64) {
		s.Replay([]display.Event{
			{Kind: display.MouseDown, X: x, Y: y, Time: at},
			{Kind: display.MouseUp, X: x, Y: y, Time: at + 0.01},
		})
	}
	click(5, 5, 0)
	click(25, 5, 1)
	click(25, 5, 2)
	if clicks["b1"] != 1 || clicks["b2"] != 2 {
		t.Errorf("clicks = %v", clicks)
	}
}

func TestStrayEventsIgnored(t *testing.T) {
	root := NewView("root", nil)
	root.Frame = geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	s := NewSession(root, nil)
	// Moves and ups with no interaction must not panic or activate.
	s.Replay([]display.Event{
		{Kind: display.MouseMove, X: 5, Y: 5, Time: 0},
		{Kind: display.MouseUp, X: 5, Y: 5, Time: 0.1},
	})
	if s.Active() {
		t.Error("stray events created an interaction")
	}
	// Mouse-down outside every view.
	s.Post(display.Event{Kind: display.MouseDown, X: 50, Y: 50, Time: 1})
	if s.Active() {
		t.Error("miss created an interaction")
	}
}

func TestSessionTapRecordsTrace(t *testing.T) {
	root := NewView("root", nil)
	root.Frame = geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	s := NewSession(root, nil)
	tr := &display.Trace{Name: "recorded"}
	s.Tap = func(ev display.Event) { tr.Append(ev) }
	s.Replay(display.DragTrace(geom.Pt(10, 10), geom.Pt(40, 40), 3, 0, 0.1, display.LeftButton))
	if tr.Len() != 5 { // down + 3 moves + up
		t.Fatalf("recorded %d events", tr.Len())
	}
	// The recorded trace replays identically into another session.
	root2 := NewView("root", nil)
	root2.Frame = geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	clicks := 0
	root2.AddHandler(&ClickHandler{Slop: 100, Action: func(v *View) { clicks++ }})
	s2 := NewSession(root2, nil)
	s2.Replay(tr.Events)
	if clicks != 1 {
		t.Fatalf("replayed trace produced %d clicks", clicks)
	}
}
