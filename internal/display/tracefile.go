package display

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Trace is a recorded interaction: a named sequence of input events that
// can be saved, loaded, and replayed. Traces make whole GRANDMA sessions
// reproducible artifacts — record a user (or a synthesizer) once, replay
// into tests and demos forever.
type Trace struct {
	Name   string  `json:"name"`
	Events []Event `json:"events"`
}

// Append adds events to the trace.
func (t *Trace) Append(evs ...Event) { t.Events = append(t.Events, evs...) }

// Len returns the number of recorded events.
func (t *Trace) Len() int { return len(t.Events) }

// WriteJSON serializes the trace to w.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("display: encoding trace %q: %w", t.Name, err)
	}
	return nil
}

// ReadTrace parses a trace from r.
func ReadTrace(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("display: decoding trace: %w", err)
	}
	return &t, nil
}

// SaveFile writes the trace to the named file.
func (t *Trace) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("display: %w", err)
	}
	defer f.Close()
	if err := t.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadTrace reads a trace from the named file.
func LoadTrace(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("display: %w", err)
	}
	defer f.Close()
	return ReadTrace(f)
}

// MarshalJSON encodes the event kind as a readable string.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(eventJSON{
		Kind: e.Kind.String(), X: e.X, Y: e.Y, Time: e.Time, Button: int(e.Button),
	})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (e *Event) UnmarshalJSON(data []byte) error {
	var j eventJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	switch j.Kind {
	case "down":
		e.Kind = MouseDown
	case "move":
		e.Kind = MouseMove
	case "up":
		e.Kind = MouseUp
	case "tick":
		e.Kind = Tick
	default:
		return fmt.Errorf("display: unknown event kind %q", j.Kind)
	}
	e.X, e.Y, e.Time, e.Button = j.X, j.Y, j.Time, Button(j.Button)
	return nil
}

type eventJSON struct {
	Kind   string  `json:"kind"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Time   float64 `json:"t"`
	Button int     `json:"button,omitempty"`
}
