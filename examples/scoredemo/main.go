// Scoredemo: a gesture-based musical score editor in the mold of GSCORE
// (the second GRANDMA application in Rubine's thesis), built from this
// library's public pieces.
//
// It demonstrates two points from the paper that GDP cannot:
//
//   - figure 8's note gestures are used as a LIVE gesture set — and since
//     each note gesture is a prefix of the next, the editor uses the
//     200 ms timeout phase transition instead of eager recognition;
//   - manipulation-phase feedback SNAPS to legal destinations (the
//     introduction's "dragged by the mouse but snapping" argument): the
//     freshly inserted note snaps to staff lines and spaces as it drags.
package main

import (
	"fmt"
	"log"

	"repro/internal/geom"
	"repro/internal/gscore"
	"repro/internal/synth"
)

func main() {
	app, err := gscore.New(gscore.Config{})
	if err != nil {
		log.Fatal(err)
	}

	params := synth.DefaultParams(9)
	params.Jitter = 0.4
	params.RotJitter = 0.01
	params.CornerLoopProb = 0
	gen := synth.NewGenerator(params)
	classes := map[string]synth.Class{}
	for _, c := range gscore.EditorClasses() {
		classes[c.Name] = c
	}
	staff := app.Score.Staff
	at := func(name string, x float64, step int) {
		s := gen.SampleAt(classes[name], geom.Pt(x, staff.StepY(step)))
		app.PlayGesture(s.G.Points)
	}

	// A little melody: insert notes of various durations left to right.
	at("quarter", 80, 2)
	at("quarter", 150, 4)
	at("eighth", 220, 5)
	at("eighth", 280, 4)
	at("sixteenth", 340, 6)
	at("quarter", 410, 8)

	// Insert one more, then drag it during the manipulation phase — it
	// snaps to lines and spaces on the way.
	s := gen.SampleAt(classes["eighth"], geom.Pt(470, staff.StepY(3)))
	app.PlayTwoPhase(s.G.Points, 0.3, []geom.Point{{X: 500, Y: staff.StepY(6) + 2}})

	// Scratch out the second note.
	del := gen.SampleAt(classes["scratch"], geom.Pt(150, staff.StepY(4)))
	app.PlayGesture(del.G.Points)

	fmt.Println("interaction log:")
	for _, l := range app.Log {
		fmt.Println(" ", l)
	}
	fmt.Printf("\nscore: %d notes\n\n", app.Score.Len())
	app.Render()
	fmt.Print(app.Canvas.Downsample(4, 4).String())
}
