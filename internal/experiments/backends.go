package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/eager"
	"repro/internal/gesture"
	"repro/internal/synth"
	"repro/internal/template"

	rcz "repro/internal/recognizer"
)

// BackendRow is one recognizer backend's outcome on one streaming
// workload, measured through the recognizer.Backend interface only — the
// same surface serve.Engine uses — so the numbers compare engines, not
// evaluation harnesses.
type BackendRow struct {
	Workload string
	Backend  string
	// Accuracy is end-to-end streaming accuracy: the class the stream
	// reports (at the eager commit if one fires, else at End) against the
	// generator's label.
	Accuracy float64
	// CommitFrac is the fraction of test gestures decided mid-stroke by
	// an eager commit rather than at End.
	CommitFrac float64
	// Eagerness is the mean fraction of each gesture's points consumed
	// before the decision (1.0 for a stroke decided only at End).
	Eagerness float64
	// DecideNS is the mean wall-clock cost of one Stream.Add.
	DecideNS float64
	TrainTime time.Duration
}

// BackendEval is the A/B comparison the pluggable-backend work exists to
// make possible: the Rubine eager recognizer and the streaming template
// matcher driven over identical synthetic workloads behind the single
// recognizer.Backend interface. See BACKENDS.md for the contract and
// BENCH_backends.json for the benchmark-grade latency numbers.
type BackendEval struct {
	Rows []BackendRow
}

// Format renders the comparison table.
func (b *BackendEval) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== backends: eager (Rubine) vs template ($1-style) behind recognizer.Backend ==\n")
	fmt.Fprintf(&sb, "%-8s %-10s %8s %12s %10s %12s %12s\n",
		"workload", "backend", "acc%", "commit-frac", "eagerness", "decide-ns", "train")
	for _, r := range b.Rows {
		fmt.Fprintf(&sb, "%-8s %-10s %7.1f%% %11.1f%% %9.1f%% %12.0f %12v\n",
			r.Workload, r.Backend, 100*r.Accuracy, 100*r.CommitFrac, 100*r.Eagerness,
			r.DecideNS, r.TrainTime.Round(time.Microsecond))
	}
	return sb.String()
}

// RunBackends trains both backends on identical sets and streams the same
// test gestures through each via recognizer.Backend.
func RunBackends(cfg Config) (*BackendEval, error) {
	out := &BackendEval{}
	for _, workload := range []struct {
		name    string
		classes []synth.Class
	}{
		{"fig9", synth.EightDirectionClasses()},
		{"gdp", synth.GDPClasses()},
	} {
		trainSet, _ := synth.NewGenerator(synth.DefaultParams(cfg.TrainSeed)).Set(workload.name+"-train", workload.classes, cfg.TrainPerClass)
		testSet, _ := synth.NewGenerator(synth.DefaultParams(cfg.TestSeed)).Set(workload.name+"-test", workload.classes, cfg.TestPerClass)

		start := time.Now()
		eagerRec, _, err := eager.Train(trainSet, cfg.Eager)
		if err != nil {
			return nil, fmt.Errorf("experiments backends %s: %w", workload.name, err)
		}
		eagerTrain := time.Since(start)

		start = time.Now()
		tmplRec, err := template.Train(trainSet, template.DefaultOptions())
		if err != nil {
			return nil, fmt.Errorf("experiments backends %s: %w", workload.name, err)
		}
		tmplTrain := time.Since(start)

		for _, b := range []struct {
			backend rcz.Backend
			train   time.Duration
		}{
			{eagerRec, eagerTrain},
			{tmplRec, tmplTrain},
		} {
			row, err := evalBackendStream(b.backend, testSet)
			if err != nil {
				return nil, fmt.Errorf("experiments backends %s/%s: %w", workload.name, b.backend.Caps().Name, err)
			}
			row.Workload = workload.name
			row.TrainTime = b.train
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// evalBackendStream streams every test gesture through one long-lived
// stream (Reset between strokes, the serve.Engine usage pattern) and
// aggregates accuracy, commit fraction, eagerness, and per-Add latency.
func evalBackendStream(b rcz.Backend, testSet *gesture.Set) (BackendRow, error) {
	row := BackendRow{Backend: b.Caps().Name}
	s, err := b.NewStream()
	if err != nil {
		return row, err
	}
	var correct, committed int
	var eagerness float64
	var addNS, adds int64
	for _, e := range testSet.Examples {
		s.Reset()
		var class string
		fired := false
		firedAt := e.Gesture.Len()
		start := time.Now()
		for i, p := range e.Gesture.Points {
			f, c, err := s.Add(p)
			if err != nil {
				return row, err
			}
			if f && !fired {
				fired, class, firedAt = true, c, i+1
			}
		}
		addNS += time.Since(start).Nanoseconds()
		adds += int64(e.Gesture.Len())
		if !fired {
			class, err = s.End()
			if err != nil {
				return row, err
			}
		} else {
			committed++
		}
		if class == e.Class {
			correct++
		}
		eagerness += float64(firedAt) / float64(e.Gesture.Len())
	}
	n := testSet.Len()
	row.Accuracy = float64(correct) / float64(n)
	row.CommitFrac = float64(committed) / float64(n)
	row.Eagerness = eagerness / float64(n)
	if adds > 0 {
		row.DecideNS = float64(addNS) / float64(adds)
	}
	return row, nil
}
