package obs_test

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestWriteProm(t *testing.T) {
	reg := obs.New()
	reg.Counter("serve.events.submitted").Add(7)
	reg.Gauge("slo.decide_p99.burn_fast").Set(1.5)
	h := reg.Histogram("eager.decide_ns", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)

	var b strings.Builder
	if err := reg.Snapshot().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE serve_events_submitted counter\nserve_events_submitted 7\n",
		"# TYPE slo_decide_p99_burn_fast gauge\nslo_decide_p99_burn_fast 1.5\n",
		"# TYPE eager_decide_ns histogram\n",
		`eager_decide_ns_bucket{le="10"} 1` + "\n",
		`eager_decide_ns_bucket{le="100"} 2` + "\n",
		`eager_decide_ns_bucket{le="+Inf"} 3` + "\n",
		"eager_decide_ns_sum 555\n",
		"eager_decide_ns_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestWritePromParseable walks the exposition line by line with a
// minimal 0.0.4 parser: every non-comment line must be `name[{labels}]
// value` with a float-parseable value, and bucket series must be
// cumulative (non-decreasing, ending at _count's value).
func TestWritePromParseable(t *testing.T) {
	reg := obs.New()
	reg.Counter("a.b").Inc()
	reg.Gauge("g").Set(-2)
	h := reg.Histogram("lat", obs.LatencyBuckets())
	for i := 0; i < 100; i++ {
		h.Observe(float64(i * 1e6))
	}

	var b strings.Builder
	if err := reg.Snapshot().WriteProm(&b); err != nil {
		t.Fatal(err)
	}

	var lastBucket int64 = -1
	var finalBucket, count int64
	for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# TYPE ") {
				t.Errorf("unexpected comment %q", line)
			}
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok || name == "" {
			t.Fatalf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		bare, _, _ := strings.Cut(name, "{")
		if strings.HasSuffix(bare, "_bucket") {
			if int64(v) < lastBucket {
				t.Errorf("bucket series not cumulative at %q", line)
			}
			lastBucket = int64(v)
			finalBucket = int64(v)
		}
		if bare == "lat_count" {
			count = int64(v)
		}
	}
	if count != 100 || finalBucket != 100 {
		t.Errorf("count = %d, final cumulative bucket = %d, want 100/100", count, finalBucket)
	}
}

func TestPromHandler(t *testing.T) {
	reg := obs.New()
	reg.Counter("c").Inc()
	rec := httptest.NewRecorder()
	obs.PromHandler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics.prom", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	if !strings.Contains(rec.Body.String(), "c 1") {
		t.Errorf("body missing counter sample: %q", rec.Body.String())
	}

	// A nil registry serves an empty, well-typed body.
	rec = httptest.NewRecorder()
	obs.PromHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics.prom", nil))
	if rec.Code != 200 || rec.Body.Len() != 0 {
		t.Errorf("nil registry: status %d body %q", rec.Code, rec.Body.String())
	}
}
