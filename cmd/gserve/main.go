// Command gserve is the observability demo server: it trains a GDP
// recognizer with full instrumentation, serves it through an
// instrumented serve.Engine, and exposes the internal/obs registry over
// HTTP. It exists so the metrics/tracing contract in OBSERVABILITY.md
// can be watched live rather than only snapshotted in tests.
//
// Endpoints:
//
//	GET  /metrics       obs snapshot as indented JSON (obs.Handler)
//	GET  /metrics.txt   human-readable report (obs.TextHandler)
//	GET  /metrics.prom  Prometheus text exposition 0.0.4 (obs.PromHandler)
//	GET  /slo           SLO burn-rate evaluation as JSON (slo.Handler) —
//	                    multi-window burn rates and ok/warn/page states
//	                    for the default objectives
//	GET  /healthz       liveness: "ok", or "ok brownout" while the
//	                    admission controller is shedding (503 once the
//	                    engine is closed)
//	POST /swap          retrain and hot-swap the model (serve.Engine.Swap
//	                    — zero downtime). Optional JSON body {"seed": N}
//	                    picks the retrain seed; an empty body derives one.
//	                    Swaps are serialized: a swap arriving while
//	                    another retrain is running gets 409 Conflict.
//	GET  /debug/trace   per-gesture span traces in Chrome Trace Event
//	                    Format — load in Perfetto (ui.perfetto.dev)
//	GET  /debug/flight  flight-recorder dump: captured gesture bundles as
//	                    JSON, replayable with cmd/greplay
//	     /debug/pprof/  the standard net/http/pprof profiles
//
// Usage:
//
//	gserve [-addr :8089] [-seed 1] [-shards 0] [-traffic 24]
//	       [-backend eager] [-flight-trigger always] [-flight-cap 256]
//	       [-idle-timeout 0] [-admit-target 0] [-wire addr]
//	       [-wire-idle-timeout 2m] [-wire-max-conns 0]
//
// -backend selects the recognizer backend the engine serves — "eager"
// (Rubine statistical, the default) or "template" (streaming $1-style
// matcher); see BACKENDS.md for the contract and the trade-offs. /swap
// retrains whichever backend is selected.
//
// -wire addr additionally hosts the binary wire-protocol ingest
// listener (internal/ingest) on addr, sharing the engine and registry
// with the HTTP side — point cmd/gload at it. The listener is hardened:
// -wire-idle-timeout closes connections that go silent (the idle
// watchdog) and -wire-max-conns caps concurrent connections, refusing
// extras with a typed overloaded response (0 = unlimited).
//
// -admit-target arms the engine's adaptive admission controller
// (serve.AdmitOptions) with the given queue-wait p99 target; sustained
// excess puts the engine in brownout — overload NACKs with retry-after
// hints on the wire, "ok brownout" on /healthz, and an "admission" field
// in the /slo document. 0 leaves admission off.
//
// -traffic N replays N synthetic GDP interactions through the engine at
// startup so /metrics shows populated histograms immediately; -shards 0
// means GOMAXPROCS; -flight-trigger picks which gestures the flight
// recorder keeps (always, on-error, on-poison, latency-over);
// -idle-timeout arms the engine's idle-session reaper (0 keeps it off).
// Every run is deterministic for a fixed -seed (see internal/obsdemo).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/eager"
	"repro/internal/flight"
	"repro/internal/ingest"
	"repro/internal/multipath"
	"repro/internal/obs"
	"repro/internal/obsdemo"
	"repro/internal/recognizer"
	"repro/internal/serve"
	"repro/internal/slo"
	"repro/internal/synth"
	"repro/internal/template"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes gserve with the given arguments. Extracted from main for
// tests; it blocks serving HTTP until the listener fails.
func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("gserve", flag.ContinueOnError)
	flags.SetOutput(stderr)
	addr := flags.String("addr", ":8089", "HTTP listen address")
	seed := flags.Int64("seed", 1, "training and traffic seed")
	shards := flags.Int("shards", 0, "engine shards (0 = GOMAXPROCS)")
	traffic := flags.Int("traffic", 24, "synthetic interactions to replay at startup")
	backend := flags.String("backend", "eager", "recognizer backend to serve: eager or template (see BACKENDS.md)")
	flightTrigger := flags.String("flight-trigger", "always",
		"flight recorder trigger: always, on-error, on-poison, latency-over")
	flightCap := flags.Int("flight-cap", flight.DefaultCapacity, "flight recorder ring capacity")
	flightLatency := flags.Duration("flight-latency", 10*time.Millisecond,
		"latency-over trigger threshold")
	idleTimeout := flags.Duration("idle-timeout", 0,
		"reap sessions idle for this long (0 disables the reaper)")
	admitTarget := flags.Duration("admit-target", 0,
		"queue-wait p99 the admission controller defends (0 disables admission)")
	wireAddr := flags.String("wire", "",
		"wire-protocol ingest listen address (empty disables the listener)")
	wireIdle := flags.Duration("wire-idle-timeout", 2*time.Minute,
		"close wire connections idle for this long (0 disables the watchdog)")
	wireMaxConns := flags.Int("wire-max-conns", 0,
		"max concurrent wire connections; extras get a typed overloaded response (0 = unlimited)")
	if err := flags.Parse(args); err != nil {
		return 2
	}

	trigger, err := flight.ParseTrigger(*flightTrigger)
	if err != nil {
		fmt.Fprintf(stderr, "gserve: %v\n", err)
		return 2
	}
	if *backend != "eager" && *backend != "template" {
		fmt.Fprintf(stderr, "gserve: unknown -backend %q (want eager or template)\n", *backend)
		return 2
	}
	srv, err := newServer(*seed, *shards, *idleTimeout, *admitTarget, flight.Options{
		Capacity:         *flightCap,
		Trigger:          trigger,
		LatencyThreshold: *flightLatency,
	}, *backend)
	if err != nil {
		fmt.Fprintf(stderr, "gserve: %v\n", err)
		return 1
	}
	if err := srv.playTraffic(*traffic); err != nil {
		fmt.Fprintf(stderr, "gserve: %v\n", err)
		return 1
	}
	if *wireAddr != "" {
		ln, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			fmt.Fprintf(stderr, "gserve: %v\n", err)
			return 1
		}
		ws := ingest.Serve(ln, srv.engine, ingest.Options{
			Obs:          srv.reg,
			IdleTimeout:  *wireIdle,
			WriteTimeout: 10 * time.Second,
			MaxConns:     *wireMaxConns,
		})
		defer ws.Close()
		fmt.Fprintf(stdout, "gserve: wire ingest on %s\n", ws.Addr())
	}
	fmt.Fprintf(stdout, "gserve: serving on %s (seed %d, %d startup interactions)\n",
		*addr, *seed, *traffic)
	if err := http.ListenAndServe(*addr, srv.mux); err != nil {
		fmt.Fprintf(stderr, "gserve: %v\n", err)
		return 1
	}
	return 0
}

// server bundles the instrumented engine, its registry, the flight
// recorder, and the HTTP mux. Split from run so tests drive the mux with
// httptest.
type server struct {
	reg      *obs.Registry
	engine   *serve.Engine
	sub      *serve.Submitter // unlimited-retry backpressure policy for startup traffic
	recorder *flight.Recorder
	mux      *http.ServeMux
	seed     int64
	backend  string       // "eager" or "template"; /swap retrains the matching kind
	swapMu   sync.Mutex   // serializes /swap retrains; TryLock -> 409
	swapN    atomic.Int64 // distinct seeds for successive /swap retrains
	nextID   atomic.Int64 // startup-traffic session IDs
	closed   atomic.Bool  // set by Close; /healthz turns 503
}

// newServer trains the initial model — the eager recognizer via
// obsdemo.New, or the streaming template matcher when backend is
// "template" — starts the engine with span tracing and a flight recorder
// attached against the same registry, and wires the mux. Either backend
// serves through the identical recognizer.Backend surface, so everything
// downstream (metrics, traces, flight bundles, swap) is backend-blind.
func newServer(seed int64, shards int, idleTimeout, admitTarget time.Duration, fopts flight.Options, backend string) (*server, error) {
	var (
		reg *obs.Registry
		rec recognizer.Backend
		err error
	)
	if backend == "template" {
		reg = obs.New()
		rec, err = trainTemplate(reg, seed)
	} else {
		backend = "eager"
		reg, rec, err = obsdemo.New(seed)
	}
	if err != nil {
		return nil, err
	}
	recorder := flight.NewRecorder(fopts)
	eopts := serve.Options{
		Backend:     rec,
		Shards:      shards,
		Obs:         reg,
		Flight:      recorder,
		IdleTimeout: idleTimeout,
	}
	if admitTarget > 0 {
		eopts.Admit = &serve.AdmitOptions{Target: admitTarget, Obs: reg}
	}
	engine, err := serve.New(nil, eopts)
	if err != nil {
		return nil, err
	}
	sub := serve.NewSubmitter(engine, serve.SubmitterOptions{Obs: reg})
	s := &server{reg: reg, engine: engine, sub: sub, recorder: recorder, mux: http.NewServeMux(), seed: seed, backend: backend}

	s.mux.Handle("/metrics", obs.Handler(reg))
	s.mux.Handle("/metrics.txt", obs.TextHandler(reg))
	s.mux.Handle("/metrics.prom", obs.PromHandler(reg))
	sloEngine := slo.New(reg, slo.DefaultObjectives(), nil)
	sloEngine.SetAdmission(func() string { return engine.AdmitState().String() })
	s.mux.Handle("/slo", slo.Handler(sloEngine))
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if s.closed.Load() {
			http.Error(w, "closed", http.StatusServiceUnavailable)
			return
		}
		// Still 200 in brownout — the process is alive and serving, just
		// shedding; load balancers should not drain a browning-out node
		// (that would dump its share onto the remaining ones).
		if s.engine.AdmitState() == serve.AdmitBrownout {
			fmt.Fprintln(w, "ok brownout")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("/swap", s.handleSwap)
	s.mux.Handle("/debug/trace", obs.ChromeTraceHandler(reg))
	s.mux.Handle("/debug/flight", flight.Handler(recorder))
	// Our own mux, so the pprof handlers are mounted explicitly rather
	// than through the package's DefaultServeMux side effects.
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s, nil
}

// Close shuts the engine down (draining in-flight sessions) and flips
// /healthz to 503 so a load balancer stops routing here. Idempotent.
func (s *server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	return s.engine.Close()
}

// swapRequest is the optional /swap JSON body.
type swapRequest struct {
	Seed int64 `json:"seed"`
}

// handleSwap retrains — on the seed from the optional JSON body, or on a
// fresh deterministic one — and hot-swaps the engine's model. In-flight
// sessions finish on the snapshot they started with. Retrains are
// serialized: a /swap arriving while another is still training is
// refused with 409 Conflict rather than queued, so concurrent callers
// can't stack unbounded training work; the engine-level Swap itself
// stays atomic either way. A closed engine (serve.ErrClosed territory)
// answers 503 — the shutting-down status load balancers understand —
// never a generic 500. Every early return happens either before the
// swap mutex is taken or under its defer, so no error path can leak the
// lock and wedge all future swaps into 409.
func (s *server) handleSwap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.closed.Load() || s.engine.Closed() {
		http.Error(w, serve.ErrClosed.Error(), http.StatusServiceUnavailable)
		return
	}
	newSeed := s.seed + 1000 + s.swapN.Add(1)
	if body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16)); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	} else if len(body) > 0 {
		var req swapRequest
		if err := json.Unmarshal(body, &req); err != nil {
			http.Error(w, fmt.Sprintf("bad /swap body: %v", err), http.StatusBadRequest)
			return
		}
		if req.Seed != 0 {
			newSeed = req.Seed
		}
	}
	if !s.swapMu.TryLock() {
		http.Error(w, "swap already in progress", http.StatusConflict)
		return
	}
	defer s.swapMu.Unlock()
	var rec recognizer.Backend
	if s.backend == "template" {
		var err error
		if rec, err = trainTemplate(s.reg, newSeed); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	} else {
		gen := synth.NewGenerator(synth.DefaultParams(newSeed))
		set, _ := gen.Set("gdp-retrain", synth.GDPClasses(), obsdemo.TrainExamples)
		opts := eager.DefaultOptions()
		opts.Obs = s.reg
		eagerRec, _, err := eager.Train(set, opts)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		rec = eagerRec
	}
	s.engine.Swap(rec)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(map[string]any{"swapped": true, "seed": newSeed})
}

// trainTemplate trains the streaming template backend on the standard
// GDP demo workload and instruments it against reg — the template-side
// mirror of obsdemo.New. Idempotent against one registry, so /swap
// retrains reuse the same template.* metric instruments.
func trainTemplate(reg *obs.Registry, seed int64) (*template.Recognizer, error) {
	gen := synth.NewGenerator(synth.DefaultParams(seed))
	set, _ := gen.Set("gdp-train", synth.GDPClasses(), obsdemo.TrainExamples)
	tmpl, err := template.Train(set, template.DefaultOptions())
	if err != nil {
		return nil, err
	}
	tmpl.Instrument(reg)
	return tmpl, nil
}

// playTraffic replays n synthetic single-finger GDP interactions through
// the engine so the registry has live data before the first scrape.
func (s *server) playTraffic(n int) error {
	gen := synth.NewGenerator(synth.DefaultParams(s.seed + 1))
	classes := synth.GDPClasses()
	for i := 0; i < n; i++ {
		sample := gen.Sample(classes[i%len(classes)])
		id := fmt.Sprintf("startup-%04d", s.nextID.Add(1))
		for j, p := range sample.G.Points {
			kind := multipath.FingerMove
			if j == 0 {
				kind = multipath.FingerDown
			}
			if err := s.sub.Submit(serve.Event{Session: id, Kind: kind, X: p.X, Y: p.Y, T: p.T}); err != nil {
				return err
			}
		}
		last := sample.G.Points[sample.G.Len()-1]
		if err := s.sub.Submit(serve.Event{Session: id, Kind: multipath.FingerUp, X: last.X, Y: last.Y, T: last.T + 0.01}); err != nil {
			return err
		}
	}
	return nil
}
