// Package obs is the repo's observability substrate: atomic counters,
// streaming histograms with fixed bucket boundaries, and a lock-free
// ring-buffered event trace, collected in a Registry whose Snapshot is
// deterministic in structure (metric names, types, and bucket boundaries
// never depend on timing or scheduling, only the observed values do).
//
// The layer is stdlib-only and designed around two constraints:
//
//   - Nil safety. Every instrument is a pointer type whose methods are
//     no-ops on a nil receiver, and every Registry accessor returns nil
//     from a nil registry. Instrumented packages therefore hold plain
//     handles and call them unconditionally; when no registry is
//     attached the calls cost under 5 ns each (BenchmarkObsDisabled*
//     proves it, CI publishes the numbers in BENCH_obs.json).
//
//   - Concurrency. All instruments are safe for concurrent use from any
//     number of goroutines without locks on the hot path: counters and
//     histogram buckets are atomics, float accumulators are CAS loops
//     on bit patterns, and the trace ring publishes immutable events
//     through atomic pointers. The whole package is exercised under the
//     race detector.
//
// OBSERVABILITY.md documents every metric the repo emits — names,
// types, units, bucket boundaries, and the emitting package — and a
// test asserts that contract against a live Snapshot.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically-increasing (by convention) atomic counter.
// All methods are safe for concurrent use and are no-ops on a nil
// receiver, so disabled instrumentation costs only the nil check.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count; 0 on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// atomicFloat64 accumulates a float64 via CAS on its bit pattern, so
// histogram sums need no lock. The zero value is 0.
type atomicFloat64 struct {
	bits atomic.Uint64
}

func (a *atomicFloat64) add(v float64) {
	for {
		old := a.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if a.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (a *atomicFloat64) load() float64 { return math.Float64frombits(a.bits.Load()) }

func (a *atomicFloat64) store(v float64) { a.bits.Store(math.Float64bits(v)) }

// min/max via CAS: update only when v improves on the current extreme.
func (a *atomicFloat64) updateMin(v float64) {
	for {
		old := a.bits.Load()
		if v >= math.Float64frombits(old) {
			return
		}
		if a.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (a *atomicFloat64) updateMax(v float64) {
	for {
		old := a.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if a.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Start returns the current time when h is non-nil and the zero Time
// otherwise, so disabled instrumentation skips the clock read entirely.
// Pair with ObserveSince.
func Start(h *Histogram) time.Time {
	if h == nil {
		return time.Time{}
	}
	return time.Now()
}

// ObserveSince records the elapsed nanoseconds since start into h. It is
// a no-op when h is nil or start is the zero Time (the disabled-path
// partner of Start), so the pattern
//
//	start := obs.Start(m.latency)
//	...work...
//	obs.ObserveSince(m.latency, start)
//
// costs two sub-5ns calls when m.latency is nil.
func ObserveSince(h *Histogram, start time.Time) {
	if h == nil || start.IsZero() {
		return
	}
	h.Observe(float64(time.Since(start)))
}

// ObserveSinceWindowed records the elapsed nanoseconds since start into
// both the cumulative histogram h and its windowed sibling w with a
// single clock read, keeping the two views of one latency in lockstep.
// Like ObserveSince it is a no-op when start is the zero Time; each
// instrument is individually nil-safe, so any subset may be attached.
func ObserveSinceWindowed(h *Histogram, w *WindowedHistogram, start time.Time) {
	if start.IsZero() || (h == nil && w == nil) {
		return
	}
	d := float64(time.Since(start))
	h.Observe(d)
	w.Observe(d)
}

// LatencyBuckets returns the standard duration bucket boundaries, in
// nanoseconds: a 1-2.5-5 progression from 250 ns to 10 s. Fixed
// boundaries keep Snapshot output deterministic for tests and make
// run-over-run histograms directly comparable. The slice is fresh on
// every call; callers may keep it.
func LatencyBuckets() []float64 {
	return []float64{
		250, 500,
		1e3, 2.5e3, 5e3,
		1e4, 2.5e4, 5e4,
		1e5, 2.5e5, 5e5,
		1e6, 2.5e6, 5e6,
		1e7, 2.5e7, 5e7,
		1e8, 2.5e8, 5e8,
		1e9, 2.5e9, 5e9,
		1e10,
	}
}

// FractionBuckets returns bucket boundaries for values in [0,1] (commit
// points, utilizations): 0.05 steps. The slice is fresh on every call.
func FractionBuckets() []float64 {
	out := make([]float64, 20)
	for i := range out {
		out[i] = float64(i+1) / 20
	}
	return out
}

// DepthBuckets returns bucket boundaries for queue depths and other
// small non-negative integers: 0, 1, 2, then powers of two to 1024.
// The slice is fresh on every call.
func DepthBuckets() []float64 {
	return []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
}
