package template

import (
	"errors"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/gesture"
	"repro/internal/obs"
	"repro/internal/recognizer"
	"repro/internal/synth"
)

// Compile-time backend compliance: the trained template matcher is a
// full recognizer.Backend and its sessions are recognizer.Streams.
var (
	_ recognizer.Backend = (*Recognizer)(nil)
	_ recognizer.Stream  = (*Session)(nil)
)

func terminalOptions() Options {
	opts := DefaultOptions()
	opts.CommitMargin = 0 // disable eager commits: classify only at End
	return opts
}

// TestStreamAgreesWithBatch feeds every test stroke point-by-point
// through a terminal-only session and checks the End classification
// agrees with the one-shot batch Classify. For strokes that fit the raw
// sample buffer (every synth stroke does) the streaming sketch is the
// raw point list, so the two paths score near-identical probes.
func TestStreamAgreesWithBatch(t *testing.T) {
	trainSet, testSet := sets(t, synth.GDPClasses(), 8, 12, 21)
	r, err := Train(trainSet, terminalOptions())
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for _, e := range testSet.Examples {
		batch := mustClassify(t, r, e.Gesture)
		s, err := r.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range e.Gesture.Points {
			fired, _, err := s.Add(p)
			if err != nil {
				t.Fatalf("Add: %v", err)
			}
			if fired {
				t.Fatal("terminal-only session fired mid-stroke")
			}
		}
		streamed, err := s.End()
		if err != nil {
			t.Fatalf("End: %v", err)
		}
		if streamed == batch {
			agree++
		}
	}
	if frac := float64(agree) / float64(testSet.Len()); frac < 0.95 {
		t.Errorf("stream/batch agreement %.2f (%d/%d)", frac, agree, testSet.Len())
	}
}

// TestEagerCommit checks the streaming eager mode end-to-end: with the
// default commit margin armed, a healthy share of strokes commits
// mid-stroke, commits report the fired transition exactly once, and
// accuracy stays comparable to the batch matcher's.
func TestEagerCommit(t *testing.T) {
	trainSet, testSet := sets(t, synth.GDPClasses(), 10, 20, 22)
	r, err := Train(trainSet, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Caps().Eager {
		t.Fatal("default options should arm the eager mode")
	}
	s, err := r.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	eagerCount, correct := 0, 0
	for _, e := range testSet.Examples {
		s.Reset()
		var class string
		fires := 0
		for _, p := range e.Gesture.Points {
			fired, c, err := s.Add(p)
			if err != nil {
				t.Fatalf("Add: %v", err)
			}
			if fired {
				fires++
				class = c
				if !s.Decided() || s.DecidedAt() != s.PointCount() {
					t.Fatalf("commit bookkeeping: decided=%v decidedAt=%d points=%d",
						s.Decided(), s.DecidedAt(), s.PointCount())
				}
			}
		}
		if fires > 1 {
			t.Fatalf("fired %d times; the transition must report exactly once", fires)
		}
		if fires == 1 {
			eagerCount++
		} else {
			if class, err = s.End(); err != nil {
				t.Fatalf("End: %v", err)
			}
		}
		if class == e.Class {
			correct++
		}
	}
	if eagerCount == 0 {
		t.Error("no stroke committed eagerly with the default margin")
	}
	if acc := float64(correct) / float64(testSet.Len()); acc < 0.85 {
		t.Errorf("eager-mode accuracy %.2f", acc)
	}
	t.Logf("eager commits: %d/%d, accuracy %.2f", eagerCount, testSet.Len(),
		float64(correct)/float64(testSet.Len()))
}

// TestLongStrokeBoundedMemory drives a stroke far past the sample
// buffer's capacity and checks the incremental sketch decimates instead
// of growing: memory stays constant-bounded, no Add errors, and End
// still classifies.
func TestLongStrokeBoundedMemory(t *testing.T) {
	trainSet, _ := sets(t, synth.GDPClasses(), 5, 1, 23)
	r, err := Train(trainSet, terminalOptions())
	if err != nil {
		t.Fatal(err)
	}
	s, err := r.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	wantCap := cap(s.samples)
	// A long spiral: tens of thousands of points, arc length growing the
	// whole way, so the sketch must rebuild and decimate repeatedly.
	const n = 50_000
	for i := 0; i < n; i++ {
		a := float64(i) * 0.05
		rad := 1 + float64(i)*0.01
		p := geom.TimedPoint{X: rad * math.Cos(a), Y: rad * math.Sin(a), T: float64(i)}
		if _, _, err := s.Add(p); err != nil {
			t.Fatalf("Add %d: %v", i, err)
		}
	}
	if cap(s.samples) != wantCap || cap(s.scratch) != wantCap {
		t.Errorf("sample buffers grew: %d/%d vs %d", cap(s.samples), cap(s.scratch), wantCap)
	}
	if s.spacing <= 0 {
		t.Error("long stroke never left the raw phase")
	}
	if s.PointCount() != n {
		t.Errorf("PointCount = %d", s.PointCount())
	}
	if _, err := s.End(); err != nil {
		t.Fatalf("End: %v", err)
	}
}

// TestAllIdenticalPointsStream pins the degenerate contract on the
// streaming path: a stroke of identical points (zero arc length) must
// not error — it stays in the raw phase, truncated to one sample, and
// classifies at End.
func TestAllIdenticalPointsStream(t *testing.T) {
	trainSet, _ := sets(t, synth.GDPClasses(), 5, 1, 24)
	r, err := Train(trainSet, terminalOptions())
	if err != nil {
		t.Fatal(err)
	}
	s, err := r.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	// Enough identical points to overflow the raw buffer and force the
	// zero-length toEquidistant branch.
	for i := 0; i < 4*sampleFactor*r.Opts.Points; i++ {
		if _, _, err := s.Add(geom.TimedPoint{X: 7, Y: 7, T: float64(i)}); err != nil {
			t.Fatalf("Add %d: %v", i, err)
		}
	}
	if _, err := s.End(); err != nil {
		t.Fatalf("End: %v", err)
	}
}

// TestPoisonAndDegrade checks the poisoned-stroke lifecycle: a
// non-finite point errors with ErrDegenerate without touching the
// sketch, subsequent Adds and End keep erroring, and Degrade classifies
// the finite prefix — matching the class the prefix alone would get.
func TestPoisonAndDegrade(t *testing.T) {
	trainSet, testSet := sets(t, synth.GDPClasses(), 10, 5, 25)
	r, err := Train(trainSet, terminalOptions())
	if err != nil {
		t.Fatal(err)
	}
	e := testSet.Examples[0]
	prefix := e.Gesture.Points[:e.Gesture.Len()*3/4]

	// What the finite prefix alone classifies as.
	want, err := r.Classify(gesture.New(prefix))
	if err != nil {
		t.Fatal(err)
	}

	s, err := r.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range prefix {
		if _, _, err := s.Add(p); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if _, _, err := s.Add(geom.TimedPoint{X: math.NaN(), Y: 0, T: 1e9}); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("poisoning Add error = %v, want ErrDegenerate", err)
	}
	if _, _, err := s.Add(geom.TimedPoint{X: 1, Y: 1, T: 1e9 + 1}); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("post-poison Add error = %v, want ErrDegenerate", err)
	}
	if _, err := s.End(); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("poisoned End error = %v, want ErrDegenerate", err)
	}
	if s.FinitePrefix() != len(prefix) {
		t.Errorf("FinitePrefix = %d, want %d", s.FinitePrefix(), len(prefix))
	}
	got, err := s.Degrade()
	if err != nil {
		t.Fatalf("Degrade: %v", err)
	}
	if got != want {
		t.Errorf("Degrade class %q, want the prefix's batch class %q", got, want)
	}
	// After a successful Degrade the session is decided: End succeeds.
	if class, err := s.End(); err != nil || class != got {
		t.Errorf("End after Degrade = %q, %v", class, err)
	}

	// Degrade with no finite prefix refuses.
	s2, _ := r.NewSession()
	if _, _, err := s2.Add(geom.TimedPoint{X: math.Inf(1), Y: 0, T: 0}); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("first-point poison error = %v", err)
	}
	if _, err := s2.Degrade(); err == nil {
		t.Error("Degrade with empty finite prefix should error")
	}
}

// TestResetReuse runs several strokes through one session, resetting in
// between, and checks each classifies as a fresh session would — the
// serve.Engine pooling contract.
func TestResetReuse(t *testing.T) {
	trainSet, testSet := sets(t, synth.GDPClasses(), 8, 6, 26)
	r, err := Train(trainSet, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s, err := r.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range testSet.Examples {
		// Fresh-session reference outcome.
		wantClass, _, err := r.Run(e.Gesture)
		if err != nil {
			t.Fatal(err)
		}
		s.Reset()
		var got string
		var fired bool
		for _, p := range e.Gesture.Points {
			f, c, err := s.Add(p)
			if err != nil {
				t.Fatalf("Add: %v", err)
			}
			if f {
				fired, got = true, c
			}
		}
		if !fired {
			if got, err = s.End(); err != nil {
				t.Fatalf("End: %v", err)
			}
		}
		if got != wantClass {
			t.Errorf("pooled session class %q, fresh session %q", got, wantClass)
		}
	}
	// Poison, then Reset, then a clean stroke: full recovery.
	s.Reset()
	if _, _, err := s.Add(geom.TimedPoint{X: math.NaN(), Y: 0, T: 0}); !errors.Is(err, ErrDegenerate) {
		t.Fatal("expected poison")
	}
	s.Reset()
	for _, p := range testSet.Examples[0].Gesture.Points {
		if _, _, err := s.Add(p); err != nil {
			t.Fatalf("Add after poison+Reset: %v", err)
		}
	}
	if _, err := s.End(); err != nil {
		t.Fatalf("End after poison+Reset: %v", err)
	}
}

// TestStreamMetrics checks every template.* metric registers and moves
// under its triggering condition — the OBSERVABILITY.md contract's
// template rows.
func TestStreamMetrics(t *testing.T) {
	trainSet, testSet := sets(t, synth.GDPClasses(), 8, 8, 27)
	r, err := Train(trainSet, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	r.Instrument(reg)

	eagerFired := 0
	for _, e := range testSet.Examples {
		_, firedAt, err := r.Run(e.Gesture)
		if err != nil {
			t.Fatal(err)
		}
		if firedAt < e.Gesture.Len() {
			eagerFired++
		}
	}
	// A commit on a stroke's final point counts as eager in the metric
	// but is indistinguishable from an End fire through Run's return
	// value alone, so bound rather than pin.
	gotEager := reg.Counter("template.fired.eager").Value()
	gotEnd := reg.Counter("template.fired.end").Value()
	if gotEager+gotEnd != int64(testSet.Len()) {
		t.Errorf("fired.eager (%d) + fired.end (%d) != %d strokes", gotEager, gotEnd, testSet.Len())
	}
	if gotEager < int64(eagerFired) || eagerFired == 0 {
		t.Errorf("template.fired.eager = %d, want >= %d and some mid-stroke commits", gotEager, eagerFired)
	}
	if n := reg.Histogram("template.decide_ns", obs.LatencyBuckets()).Count(); n == 0 {
		t.Error("template.decide_ns never observed")
	}
	if n := reg.Histogram("template.commit_frac", obs.FractionBuckets()).Count(); n != int64(testSet.Len()) {
		t.Errorf("template.commit_frac count = %d, want %d", n, testSet.Len())
	}

	// Poison + degrade + reset counters.
	s, err := r.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range testSet.Examples[0].Gesture.Points[:4] {
		if _, _, err := s.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	s.Add(geom.TimedPoint{X: math.NaN(), Y: 0, T: 99})
	s.Add(geom.TimedPoint{X: math.NaN(), Y: 0, T: 100}) // counted once, not twice
	if got := reg.Counter("template.session.poisoned").Value(); got != 1 {
		t.Errorf("template.session.poisoned = %d, want 1", got)
	}
	if _, err := s.Degrade(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("template.session.degraded").Value(); got != 1 {
		t.Errorf("template.session.degraded = %d, want 1", got)
	}
	s.Reset()
	if got := reg.Counter("template.session.resets").Value(); got != 1 {
		t.Errorf("template.session.resets = %d, want 1", got)
	}
}

// TestStreamSpansAndTaps checks the streaming session reports the same
// span vocabulary and Decision sequence shape as the eager backend, so
// trace viewers and flight bundles stay backend-agnostic.
func TestStreamSpansAndTaps(t *testing.T) {
	trainSet, testSet := sets(t, synth.GDPClasses(), 8, 2, 28)
	r, err := Train(trainSet, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	buf := reg.Spans("gesture.spans", 1024)
	root := buf.Start("gesture")

	s, err := r.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	s.SetSpan(root)
	var decisions []recognizer.Decision
	s.SetTap(decisionRecorder{&decisions})

	e := testSet.Examples[0]
	fired := false
	for _, p := range e.Gesture.Points {
		f, _, err := s.Add(p)
		if err != nil {
			t.Fatal(err)
		}
		fired = fired || f
	}
	if !fired {
		if _, err := s.End(); err != nil {
			t.Fatal(err)
		}
	}
	root.End()

	if len(decisions) < e.Gesture.Len() {
		t.Fatalf("tap saw %d decisions for %d points", len(decisions), e.Gesture.Len())
	}
	for i, d := range decisions[:e.Gesture.Len()] {
		if d.Kind != "add" || d.Index != i+1 {
			t.Fatalf("decision %d: kind=%q index=%d", i, d.Kind, d.Index)
		}
	}
	if !fired {
		last := decisions[len(decisions)-1]
		if last.Kind != "end" || last.Class == "" {
			t.Errorf("end decision = %+v", last)
		}
	}
	// Some per-point decision must carry a margin once scoring starts.
	sawMargin := false
	for _, d := range decisions {
		if d.Kind == "add" && d.Margin != 0 {
			sawMargin = true
		}
	}
	if !sawMargin {
		t.Error("no per-point decision carried a commit margin")
	}

	sawDecide := false
	for _, rec := range buf.Records() {
		if rec.Name == "decide" {
			sawDecide = true
		}
	}
	if !sawDecide {
		t.Error("no decide span recorded")
	}
}

type decisionRecorder struct{ out *[]recognizer.Decision }

func (d decisionRecorder) TapPoint(geom.TimedPoint)            {}
func (d decisionRecorder) TapDecision(dec recognizer.Decision) { *d.out = append(*d.out, dec) }
