package multistroke

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/gesture"
	"repro/internal/recognizer"
	"repro/internal/synth"
)

// strokeClasses are the single-stroke alphabet for multi-stroke marks.
func strokeClasses() []synth.Class {
	return []synth.Class{
		{Name: "slash", Skeleton: []geom.Point{{X: 0, Y: 60}, {X: 55, Y: 0}}, DecisionVertex: -1},
		{Name: "backslash", Skeleton: []geom.Point{{X: 0, Y: 0}, {X: 55, Y: 60}}, DecisionVertex: -1},
		{Name: "hbar", Skeleton: []geom.Point{{X: 0, Y: 0}, {X: 60, Y: 0}}, DecisionVertex: -1},
		{Name: "vbar", Skeleton: []geom.Point{{X: 0, Y: 0}, {X: 0, Y: 60}}, DecisionVertex: -1},
	}
}

func trainSingle(t *testing.T) *recognizer.Full {
	t.Helper()
	set, _ := synth.NewGenerator(synth.DefaultParams(3)).Set("strokes", strokeClasses(), 12)
	full, err := recognizer.Train(set, recognizer.DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	return full
}

func newRec(t *testing.T) *Recognizer {
	t.Helper()
	r := New(trainSingle(t), DefaultConfig())
	for _, d := range []Definition{
		{Name: "X", Strokes: []string{"slash", "backslash"}, RequireOverlap: true},
		{Name: "equals", Strokes: []string{"hbar", "hbar"}},
		{Name: "plus", Strokes: []string{"hbar", "vbar"}, RequireOverlap: true},
	} {
		if err := r.Define(d); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

// strokeAt synthesizes one named stroke anchored at origin, starting at
// time t0.
func strokeAt(t *testing.T, gen *synth.Generator, name string, origin geom.Point, t0 float64) gesture.Gesture {
	t.Helper()
	for _, c := range strokeClasses() {
		if c.Name == name {
			s := gen.SampleAt(c, origin)
			return gesture.New(s.G.Points.TimeShift(t0 - s.G.Points[0].T))
		}
	}
	t.Fatalf("no stroke class %q", name)
	return gesture.Gesture{}
}

func cleanGen(seed int64) *synth.Generator {
	p := synth.DefaultParams(seed)
	p.Jitter = 0.5
	p.RotJitter = 0.01
	p.CornerLoopProb = 0
	return synth.NewGenerator(p)
}

func TestXMark(t *testing.T) {
	r := newRec(t)
	gen := cleanGen(5)
	// Two crossing slashes drawn 0.3 s apart.
	s1 := strokeAt(t, gen, "slash", geom.Pt(100, 100), 0)
	s2 := strokeAt(t, gen, "backslash", geom.Pt(100, 70), s1.End().T+0.3)
	marks, err := r.Recognize([]gesture.Gesture{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if len(marks) != 1 {
		t.Fatalf("marks = %d", len(marks))
	}
	if marks[0].Name != "X" {
		t.Fatalf("mark = %q (classes %v)", marks[0].Name, marks[0].Classes)
	}
	if len(marks[0].Strokes) != 2 {
		t.Fatalf("strokes in mark = %d", len(marks[0].Strokes))
	}
}

func TestEqualsMark(t *testing.T) {
	r := newRec(t)
	gen := cleanGen(6)
	s1 := strokeAt(t, gen, "hbar", geom.Pt(100, 100), 0)
	s2 := strokeAt(t, gen, "hbar", geom.Pt(100, 120), s1.End().T+0.25)
	marks, err := r.Recognize([]gesture.Gesture{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if len(marks) != 1 || marks[0].Name != "equals" {
		t.Fatalf("marks = %+v", marks)
	}
}

func TestTimeoutSplitsMarks(t *testing.T) {
	r := newRec(t)
	gen := cleanGen(7)
	s1 := strokeAt(t, gen, "slash", geom.Pt(100, 100), 0)
	// Second stroke starts 2 s later: a separate mark.
	s2 := strokeAt(t, gen, "backslash", geom.Pt(100, 40), s1.End().T+2)
	marks, err := r.Recognize([]gesture.Gesture{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if len(marks) != 2 {
		t.Fatalf("marks = %d, want 2 separate", len(marks))
	}
	// Single strokes match no multi-stroke definition.
	if marks[0].Name != "" || marks[1].Name != "" {
		t.Fatalf("single strokes matched: %q %q", marks[0].Name, marks[1].Name)
	}
}

func TestDistanceSplitsMarks(t *testing.T) {
	r := newRec(t)
	gen := cleanGen(8)
	s1 := strokeAt(t, gen, "hbar", geom.Pt(100, 100), 0)
	// Quick but far away: separate mark.
	s2 := strokeAt(t, gen, "hbar", geom.Pt(600, 300), s1.End().T+0.2)
	marks, err := r.Recognize([]gesture.Gesture{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if len(marks) != 2 {
		t.Fatalf("marks = %d, want 2", len(marks))
	}
}

func TestOverlapRequirement(t *testing.T) {
	r := newRec(t)
	gen := cleanGen(9)
	// Slash and backslash near in time but NOT crossing: classes match X
	// but the overlap requirement fails.
	s1 := strokeAt(t, gen, "slash", geom.Pt(100, 100), 0)
	s2 := strokeAt(t, gen, "backslash", geom.Pt(170, 30), s1.End().T+0.2)
	if s1.Bounds().Intersects(s2.Bounds()) {
		t.Fatal("test setup: strokes unexpectedly overlap")
	}
	marks, err := r.Recognize([]gesture.Gesture{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if len(marks) != 1 {
		t.Fatalf("marks = %d", len(marks))
	}
	if marks[0].Name == "X" {
		t.Fatal("non-crossing slashes matched X")
	}
}

func TestStreamingSession(t *testing.T) {
	r := newRec(t)
	gen := cleanGen(10)
	s := r.NewSession()
	s1 := strokeAt(t, gen, "hbar", geom.Pt(100, 100), 0)
	s2 := strokeAt(t, gen, "vbar", geom.Pt(130, 70), s1.End().T+0.2)
	if m, err := s.AddStroke(s1); err != nil || m != nil {
		t.Fatalf("first stroke emitted a mark (%v, %v)", m, err)
	}
	if m, err := s.AddStroke(s2); err != nil || m != nil {
		t.Fatalf("joined stroke emitted a mark (%v, %v)", m, err)
	}
	// A distant stroke closes the plus.
	s3 := strokeAt(t, gen, "hbar", geom.Pt(500, 300), s2.End().T+0.2)
	m, err := s.AddStroke(s3)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || m.Name != "plus" {
		t.Fatalf("emitted mark = %+v", m)
	}
	final := s.Flush()
	if final == nil || final.Name != "" || len(final.Strokes) != 1 {
		t.Fatalf("flush = %+v", final)
	}
	if s.Flush() != nil {
		t.Fatal("second flush emitted")
	}
	if m, err := s.AddStroke(gesture.Gesture{}); err != nil || m != nil {
		t.Fatal("empty stroke emitted")
	}
}

func TestDefineValidation(t *testing.T) {
	r := New(trainSingle(t), Config{})
	if err := r.Define(Definition{Name: "", Strokes: []string{"hbar"}}); err == nil {
		t.Error("empty name accepted")
	}
	if err := r.Define(Definition{Name: "x", Strokes: nil}); err == nil {
		t.Error("empty strokes accepted")
	}
	if err := r.Define(Definition{Name: "x", Strokes: []string{"nosuch"}}); err == nil {
		t.Error("unknown stroke class accepted")
	}
}
