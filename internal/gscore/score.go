// Package gscore implements a small gesture-based musical score editor in
// the mold of GSCORE, the second GRANDMA application in Rubine's thesis.
// It exercises the parts of the paper GDP does not:
//
//   - the figure-8 note gestures (quarter through sixty-fourth) as a live
//     gesture set — and, because each note gesture is a prefix of the
//     next, the editor uses the TIMEOUT phase transition rather than eager
//     recognition, exactly the trade-off section 5 derives;
//   - manipulation-phase feedback that SNAPS to legal destinations — the
//     introduction's argument for two-phase interaction ("a text cursor,
//     dragged by the mouse but snapping to legal destinations"): here the
//     dragged note snaps to staff lines and spaces.
package gscore

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/raster"
)

// Duration is a note duration, named as in Buxton's gesture set.
type Duration string

// Durations, longest to shortest.
const (
	Quarter      Duration = "quarter"
	Eighth       Duration = "eighth"
	Sixteenth    Duration = "sixteenth"
	ThirtySecond Duration = "thirtysecond"
	SixtyFourth  Duration = "sixtyfourth"
)

// Flags returns the number of flags drawn on the note's stem.
func (d Duration) Flags() int {
	switch d {
	case Eighth:
		return 1
	case Sixteenth:
		return 2
	case ThirtySecond:
		return 3
	case SixtyFourth:
		return 4
	default:
		return 0
	}
}

// Valid reports whether d is a known duration.
func (d Duration) Valid() bool {
	switch d {
	case Quarter, Eighth, Sixteenth, ThirtySecond, SixtyFourth:
		return true
	}
	return false
}

// Note is one note on the staff: a horizontal (time) position and a pitch
// step. Step 0 is the bottom staff line; each +1 is the next line-or-space
// upward (so even steps sit on lines, odd steps in spaces).
type Note struct {
	id       int
	X        float64
	Step     int
	Duration Duration
}

// ID returns the score-assigned identity.
func (n *Note) ID() int { return n.id }

// Staff describes the drawing geometry of a five-line staff.
type Staff struct {
	// Left and Right bound the staff horizontally, in canvas coordinates.
	Left, Right float64
	// BaseY is the y coordinate of the bottom staff line.
	BaseY float64
	// Gap is the vertical distance between adjacent staff lines. A step is
	// half a gap.
	Gap float64
}

// StepY returns the y coordinate of a pitch step.
func (s Staff) StepY(step int) float64 {
	return s.BaseY - float64(step)*s.Gap/2
}

// YToStep returns the nearest pitch step for a y coordinate — the snapping
// function for manipulation feedback.
func (s Staff) YToStep(y float64) int {
	return int(math.Round((s.BaseY - y) * 2 / s.Gap))
}

// ClampX keeps a time position inside the staff.
func (s Staff) ClampX(x float64) float64 {
	if x < s.Left {
		return s.Left
	}
	if x > s.Right {
		return s.Right
	}
	return x
}

// Score is a staff plus its notes, ordered by time position.
type Score struct {
	Staff  Staff
	notes  []*Note
	nextID int
}

// NewScore returns an empty score over the given staff.
func NewScore(staff Staff) *Score {
	return &Score{Staff: staff, nextID: 1}
}

// Add inserts a note, snapping its position onto the staff, and returns it.
func (sc *Score) Add(x float64, step int, d Duration) *Note {
	n := &Note{id: sc.nextID, X: sc.Staff.ClampX(x), Step: step, Duration: d}
	sc.nextID++
	sc.notes = append(sc.notes, n)
	sc.sortNotes()
	return n
}

// Remove deletes a note by identity; unknown notes are ignored.
func (sc *Score) Remove(n *Note) {
	for i, x := range sc.notes {
		if x == n {
			sc.notes = append(sc.notes[:i], sc.notes[i+1:]...)
			return
		}
	}
}

// Notes returns the notes in time order (do not mutate the slice).
func (sc *Score) Notes() []*Note { return sc.notes }

// Len returns the number of notes.
func (sc *Score) Len() int { return len(sc.notes) }

// At returns the note nearest to (x, y) within tol, or nil.
func (sc *Score) At(x, y, tol float64) *Note {
	var best *Note
	bestD := tol
	for _, n := range sc.notes {
		dx := n.X - x
		dy := sc.Staff.StepY(n.Step) - y
		d := math.Hypot(dx, dy)
		if d <= bestD {
			best, bestD = n, d
		}
	}
	return best
}

// Move repositions a note with snapping: x clamps to the staff, y snaps to
// the nearest line or space.
func (sc *Score) Move(n *Note, x, y float64) {
	n.X = sc.Staff.ClampX(x)
	n.Step = sc.Staff.YToStep(y)
	sc.sortNotes()
}

func (sc *Score) sortNotes() {
	sort.SliceStable(sc.notes, func(i, j int) bool { return sc.notes[i].X < sc.notes[j].X })
}

// Draw paints the staff and its notes.
func (sc *Score) Draw(c *raster.Canvas) {
	s := sc.Staff
	for line := 0; line < 5; line++ {
		y := s.StepY(line * 2)
		c.Line(s.Left, y, s.Right, y, '-')
	}
	for _, n := range sc.notes {
		sc.drawNote(c, n)
	}
}

// drawNote paints a note head, stem, and flags.
func (sc *Score) drawNote(c *raster.Canvas, n *Note) {
	y := sc.Staff.StepY(n.Step)
	c.SetF(n.X, y, '@')
	// Stem upward, two gaps tall.
	stemTop := y - 2*sc.Staff.Gap
	c.Line(n.X+1, y-1, n.X+1, stemTop, '|')
	// Flags off the stem top.
	for f := 0; f < n.Duration.Flags(); f++ {
		fy := stemTop + float64(f)*2
		c.Line(n.X+1, fy, n.X+4, fy+1, '\\')
	}
}

// String summarizes a note for logs.
func (n *Note) String() string {
	return fmt.Sprintf("%s#%d(x=%.0f,step=%d)", n.Duration, n.id, n.X, n.Step)
}
