package grandma

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/eager"
	"repro/internal/gesture"
	"repro/internal/script"
)

// Retarget swaps the handler's recognizer for a newly trained one — the
// runtime half of GRANDMA's train-by-example loop. The handler keeps its
// mode, predicates, and registered semantics; semantics for classes the
// new recognizer does not know simply stop firing.
func (h *GestureHandler) Retarget(rec *eager.Recognizer) {
	h.eag = rec
	h.full = rec.Full
}

// Editor drives GRANDMA's interactive gesture-set editing: "GRANDMA, a
// tool for building gesture-based applications" lets the designer add
// gesture classes by example and attach interpreted semantics at runtime.
// The Editor owns the example set, a Recorder for collecting strokes
// through the live interface, and the retraining step that swaps the new
// recognizer into the handler.
type Editor struct {
	Handler *GestureHandler
	// Set is the training set being edited.
	Set *gesture.Set
	// Recorder collects strokes when recording is active. Attach it to a
	// view (ahead of the gesture handler) once; it stays inert until
	// BeginRecording.
	Recorder *Recorder
	// Options configures retraining.
	Options eager.Options
}

// NewEditor builds an editor for a handler, seeding the example set (which
// may be empty or the set the handler was originally trained from).
func NewEditor(h *GestureHandler, seed *gesture.Set, opts eager.Options) *Editor {
	if seed == nil {
		seed = &gesture.Set{Name: "edited"}
	}
	return &Editor{
		Handler:  h,
		Set:      seed,
		Recorder: &Recorder{Set: seed},
		Options:  opts,
	}
}

// BeginRecording arms the recorder: subsequent strokes on its view are
// captured as examples of the named class instead of being recognized.
func (e *Editor) BeginRecording(class string) error {
	if class == "" {
		return errors.New("grandma: recording needs a class name")
	}
	e.Recorder.Class = class
	return nil
}

// EndRecording disarms the recorder; strokes flow to the gesture handler
// again.
func (e *Editor) EndRecording() {
	e.Recorder.Class = ""
}

// Recording reports the class being recorded, or "".
func (e *Editor) Recording() string { return e.Recorder.Class }

// Counts returns examples per class in the edited set, sorted by name.
func (e *Editor) Counts() []string {
	counts := e.Set.CountByClass()
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = fmt.Sprintf("%s:%d", n, counts[n])
	}
	return out
}

// RemoveClass deletes every example of a class from the set (the gesture
// still needs a Retrain to disappear from the recognizer).
func (e *Editor) RemoveClass(class string) int {
	kept := e.Set.Examples[:0]
	removed := 0
	for _, ex := range e.Set.Examples {
		if ex.Class == class {
			removed++
			continue
		}
		kept = append(kept, ex)
	}
	e.Set.Examples = kept
	return removed
}

// Retrain rebuilds the recognizer from the edited set and swaps it into
// the handler. The handler keeps running throughout; recognition simply
// uses the new classifier from the next interaction on.
func (e *Editor) Retrain() (*eager.Report, error) {
	rec, report, err := eager.Train(e.Set, e.Options)
	if err != nil {
		return nil, fmt.Errorf("grandma: retrain: %w", err)
	}
	e.Handler.Retarget(rec)
	return report, nil
}

// SetScriptSemantics attaches interpreted recog/manip/done semantics to a
// class, in GRANDMA's message language.
func (e *Editor) SetScriptSemantics(class, recogSrc, manipSrc, doneSrc string, bind func(a *Attrs, env *script.Env), onErr func(error)) error {
	sem, err := ScriptSemantics(recogSrc, manipSrc, doneSrc, bind, onErr)
	if err != nil {
		return err
	}
	e.Handler.Register(class, sem)
	return nil
}
