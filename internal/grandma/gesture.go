package grandma

import (
	"repro/internal/display"
	"repro/internal/eager"
	"repro/internal/geom"
	"repro/internal/gesture"
	"repro/internal/recognizer"
)

// TransitionMode selects how the two-phase interaction moves from gesture
// collection to manipulation — the three alternatives of the paper's
// introduction of GRANDMA:
//
//  1. when the mouse button is released (the manipulation phase is
//     omitted),
//  2. by a timeout indicating the user has kept the mouse still while
//     holding the button (200 ms), or
//  3. when enough of the gesture has been seen to classify it
//     unambiguously — eager recognition.
type TransitionMode int

// Transition modes.
const (
	ModeMouseUp TransitionMode = iota
	ModeTimeout
	ModeEager
)

// String implements fmt.Stringer.
func (m TransitionMode) String() string {
	switch m {
	case ModeMouseUp:
		return "mouse-up"
	case ModeTimeout:
		return "timeout"
	case ModeEager:
		return "eager"
	default:
		return "unknown"
	}
}

// DefaultTimeout is the paper's motionless-mouse timeout: 200 ms.
const DefaultTimeout = 0.2

// Attrs carries the gestural attributes available to gesture semantics —
// the values the paper's interpreter binds lazily into the environment
// (<startX>, <currentX>, the enclosed area, and so on).
type Attrs struct {
	View  *View
	Class string
	// Start of the gesture.
	StartX, StartY, StartT float64
	// Current mouse position (updated every manipulation point).
	CurrentX, CurrentY, CurrentT float64
	// Points collected so far (the gesture during collection; gesture plus
	// manipulation trail afterwards).
	Points geom.Path
	// GesturePoints is the collection-phase prefix only — what the
	// classifier saw.
	GesturePoints geom.Path
	// Recog holds the value returned by the Recog semantics, available to
	// Manip and Done (the paper stores it in the variable "recog").
	Recog any
}

// Bounds returns the bounding box of the gesture points (used by
// enclosure-style semantics such as GDP's group gesture).
func (a *Attrs) Bounds() geom.Rect { return a.GesturePoints.Bounds() }

// InitialAngle returns the gesture's initial direction in radians — the
// angle from its first to its third point, the attribute the paper's
// modified GDP maps to rectangle orientation. Gestures shorter than three
// points return 0.
func (a *Attrs) InitialAngle() float64 {
	if len(a.GesturePoints) < 3 {
		return 0
	}
	p0, p2 := a.GesturePoints[0], a.GesturePoints[2]
	return geom.Pt(p2.X-p0.X, p2.Y-p0.Y).Angle()
}

// GestureLength returns the arc length of the collected gesture — the
// attribute the modified GDP maps to line thickness.
func (a *Attrs) GestureLength() float64 { return a.GesturePoints.Length() }

// Semantics is the per-gesture-class behaviour triple of §3.2: recog is
// evaluated at the phase transition, manip for each mouse point during the
// manipulation phase, done when the interaction ends.
type Semantics struct {
	Recog func(a *Attrs) any
	Manip func(a *Attrs)
	Done  func(a *Attrs)
}

// GestureHandler is GRANDMA's gesture event handler: it collects and inks
// the gesture, decides the phase transition, classifies, and runs the
// recognized class's semantics. Each instance recognizes its own gesture
// set with its own semantics.
type GestureHandler struct {
	Button    display.Button
	Predicate func(ev display.Event, v *View) bool
	Mode      TransitionMode
	// Timeout is the motionless interval for ModeTimeout; 0 means
	// DefaultTimeout.
	Timeout float64
	// OnRecognized, if set, observes every recognition (for tests, logs,
	// and the demo binaries).
	OnRecognized func(class string, a *Attrs)
	// MinProbability rejects gestures whose estimated class probability
	// (the paper's 1/sum(exp(v_j - v_winner)) formula, §4.2) falls below
	// it. 0 disables probability rejection.
	MinProbability float64
	// MaxMahalanobis rejects gestures farther than this Mahalanobis
	// distance from the winning class mean. 0 disables distance rejection.
	MaxMahalanobis float64
	// OnRejected, if set, observes rejected gestures. A rejected gesture
	// runs no semantics.
	OnRejected func(a *Attrs, probability, distance float64)

	full      *recognizer.Full
	eag       *eager.Recognizer
	semantics map[string]*Semantics
}

// NewGestureHandler builds a handler around a full (non-eager) classifier.
// mode must be ModeMouseUp or ModeTimeout.
func NewGestureHandler(full *recognizer.Full, mode TransitionMode) *GestureHandler {
	if mode == ModeEager {
		panic("grandma: ModeEager requires NewEagerGestureHandler")
	}
	return &GestureHandler{
		Mode:      mode,
		full:      full,
		semantics: make(map[string]*Semantics),
	}
}

// NewEagerGestureHandler builds a handler that transitions phases by eager
// recognition.
func NewEagerGestureHandler(eag *eager.Recognizer) *GestureHandler {
	return &GestureHandler{
		Mode:      ModeEager,
		eag:       eag,
		full:      eag.Full,
		semantics: make(map[string]*Semantics),
	}
}

// Register associates semantics with a gesture class. Classes without
// semantics still classify; they just have no effect.
func (h *GestureHandler) Register(class string, sem *Semantics) {
	h.semantics[class] = sem
}

// Classes returns the classes of the underlying classifier.
func (h *GestureHandler) Classes() []string { return h.full.Classes() }

// BiasClass adjusts the named class's misclassification cost (§4.2:
// "simply by adjusting the constant terms of the evaluation functions, it
// is possible to bias the classifier away from certain classes. This is
// useful when mistakenly choosing a certain class is a grave error").
// Negative delta makes the class need stronger evidence — the natural
// setting for destructive gestures like GDP's delete. Returns false when
// the class is unknown.
func (h *GestureHandler) BiasClass(class string, delta float64) bool {
	idx := h.full.C.ClassIndex(class)
	if idx < 0 {
		return false
	}
	h.full.C.BiasClass(idx, delta)
	return true
}

// Wants implements EventHandler.
func (h *GestureHandler) Wants(ev display.Event, v *View) bool {
	if ev.Kind != display.MouseDown || ev.Button != h.Button {
		return false
	}
	if h.Predicate != nil && !h.Predicate(ev, v) {
		return false
	}
	return true
}

// Begin implements EventHandler: it starts the collection phase.
func (h *GestureHandler) Begin(ev display.Event, v *View, s *Session) Interaction {
	g := &gestureInteraction{h: h, view: v}
	g.attrs = Attrs{
		View:   v,
		StartX: ev.X, StartY: ev.Y, StartT: ev.Time,
		CurrentX: ev.X, CurrentY: ev.Y, CurrentT: ev.Time,
	}
	p := geom.TimedPoint{X: ev.X, Y: ev.Y, T: ev.Time}
	g.points = geom.Path{p}
	if h.Mode == ModeEager {
		// NewSession fails only on invalid feature options; degrade to
		// mouse-up classification (stream == nil) rather than crash the UI.
		if stream, err := h.eag.NewSession(); err == nil {
			g.stream = stream
			g.stream.Add(p)
		}
	}
	if h.Mode == ModeTimeout {
		g.armTimeout(s)
	}
	s.SetInk(g.points)
	return g
}

// phase constants for gestureInteraction.
const (
	phaseCollecting = iota
	phaseManipulating
)

type gestureInteraction struct {
	h      *GestureHandler
	view   *View
	phase  int
	points geom.Path
	attrs  Attrs
	stream *eager.Session
	timer  *display.Timer
	sem    *Semantics
	ended  bool
}

func (g *gestureInteraction) timeout() float64 {
	if g.h.Timeout > 0 {
		return g.h.Timeout
	}
	return DefaultTimeout
}

func (g *gestureInteraction) armTimeout(s *Session) {
	s.Display.Cancel(g.timer)
	g.timer = s.Display.Schedule(g.timeout(), func() {
		if g.ended || g.phase != phaseCollecting {
			return
		}
		// The mouse has been still: transition at the last known point,
		// stamped with the (later) time the timer fired.
		g.transition(s, g.attrs.CurrentX, g.attrs.CurrentY, s.Display.Now())
	})
}

// transition classifies the collected gesture and enters the manipulation
// phase: evaluate recog once, then manip for this first position.
func (g *gestureInteraction) transition(s *Session, x, y, t float64) {
	var class string
	rejected := false
	var prob, dist float64
	if g.h.MinProbability > 0 || g.h.MaxMahalanobis > 0 {
		res, err := g.h.full.Evaluate(gesture.New(g.points))
		if err != nil {
			// Unclassifiable stroke (e.g. non-finite input): reject it
			// rather than act on garbage.
			rejected = true
		} else {
			class, prob, dist = res.Class, res.Probability, res.Mahalanobis
			if g.h.MinProbability > 0 && prob < g.h.MinProbability {
				rejected = true
			}
			if g.h.MaxMahalanobis > 0 && dist > g.h.MaxMahalanobis {
				rejected = true
			}
		}
		if !rejected && g.h.Mode == ModeEager && g.stream != nil && g.stream.Decided() {
			class = g.stream.Class()
		}
	} else if g.h.Mode == ModeEager && g.stream != nil && g.stream.Decided() {
		class = g.stream.Class()
	} else {
		c, err := g.h.full.Classify(gesture.New(g.points))
		if err != nil {
			rejected = true
		}
		class = c
	}
	g.phase = phaseManipulating
	if rejected {
		g.attrs.Class = ""
		g.attrs.GesturePoints = g.points.Clone()
		g.attrs.CurrentX, g.attrs.CurrentY, g.attrs.CurrentT = x, y, t
		g.attrs.Points = g.points
		g.sem = nil
		if g.h.OnRejected != nil {
			g.h.OnRejected(&g.attrs, prob, dist)
		}
		s.Redraw()
		return
	}
	g.attrs.Class = class
	g.attrs.GesturePoints = g.points.Clone()
	g.attrs.CurrentX, g.attrs.CurrentY, g.attrs.CurrentT = x, y, t
	g.attrs.Points = g.points
	g.sem = g.h.semantics[class]
	if g.sem != nil && g.sem.Recog != nil {
		g.attrs.Recog = g.sem.Recog(&g.attrs)
	}
	if g.h.OnRecognized != nil {
		g.h.OnRecognized(class, &g.attrs)
	}
	if g.sem != nil && g.sem.Manip != nil {
		g.sem.Manip(&g.attrs)
	}
	s.Redraw()
}

// Handle implements Interaction.
func (g *gestureInteraction) Handle(ev display.Event, s *Session) bool {
	switch ev.Kind {
	case display.MouseMove:
		g.attrs.CurrentX, g.attrs.CurrentY, g.attrs.CurrentT = ev.X, ev.Y, ev.Time
		p := geom.TimedPoint{X: ev.X, Y: ev.Y, T: ev.Time}
		g.points = append(g.points, p)
		g.attrs.Points = g.points
		switch g.phase {
		case phaseCollecting:
			s.SetInk(g.points)
			switch g.h.Mode {
			case ModeEager:
				// An Add error means the stroke is poisoned (non-finite
				// point); keep collecting — the mouse-up transition will
				// reject it.
				if g.stream != nil {
					if fired, _, err := g.stream.Add(p); err == nil && fired {
						g.transition(s, ev.X, ev.Y, ev.Time)
					}
				}
			case ModeTimeout:
				g.armTimeout(s)
			}
		case phaseManipulating:
			if g.sem != nil && g.sem.Manip != nil {
				g.sem.Manip(&g.attrs)
			}
			s.Redraw()
		}
		return false

	case display.MouseUp:
		g.ended = true
		s.Display.Cancel(g.timer)
		g.attrs.CurrentX, g.attrs.CurrentY, g.attrs.CurrentT = ev.X, ev.Y, ev.Time
		if g.phase == phaseCollecting {
			// Gesture ended before any transition: classify now; the
			// manipulation phase is omitted (alternative 1 of §1).
			g.transition(s, ev.X, ev.Y, ev.Time)
		}
		if g.sem != nil && g.sem.Done != nil {
			g.sem.Done(&g.attrs)
		}
		s.ClearInk()
		return true

	default:
		return false
	}
}
