// Command gdp runs the headless GDP drawing program, driven by a small
// script of gestures and direct manipulations, and renders the scene as
// ASCII. It demonstrates the full two-phase interaction pipeline: gestures
// are synthesized as mouse traces, recognized (optionally eagerly), and
// their semantics create and manipulate shapes.
//
// Usage:
//
//	gdp [-mode eager|timeout|mouseup] [-w 600] [-h 400] [-shrink 5]
//	    [-script file] [-seed N]
//
// See gdp.Driver for the script command reference. Without -script, a
// built-in demo runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/display"
	"repro/internal/gdp"
	"repro/internal/grandma"
	"repro/internal/synth"
)

const demoScript = `
# GDP demo: create shapes by gesture (with two-phase manipulation), then
# render the scene.
twophase rect 90 60 210 150
gesture line 300 170
twophase ellipse 460 120 510 150
gesture dot 60 300
settext hello
twophase text 180 320 240 330
render
log
`

func main() {
	mode := flag.String("mode", "timeout", "phase transition: eager|timeout|mouseup")
	width := flag.Int("w", 600, "canvas width (scene coordinates)")
	height := flag.Int("h", 400, "canvas height (scene coordinates)")
	shrink := flag.Int("shrink", 5, "downsample factor for terminal output (0 = raw)")
	scriptPath := flag.String("script", "", "script file, or '-' for stdin (default: built-in demo)")
	record := flag.String("record", "", "save every input event to this trace JSON file")
	seed := flag.Int64("seed", 7, "gesture synthesis seed")
	flag.Parse()

	var m grandma.TransitionMode
	switch *mode {
	case "eager":
		m = grandma.ModeEager
	case "timeout":
		m = grandma.ModeTimeout
	case "mouseup":
		m = grandma.ModeMouseUp
	default:
		fmt.Fprintf(os.Stderr, "gdp: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	app, err := gdp.New(gdp.Config{Width: *width, Height: *height, Mode: m})
	if err != nil {
		fatal(err)
	}

	src := demoScript
	switch {
	case *scriptPath == "-":
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		src = string(b)
	case *scriptPath != "":
		b, err := os.ReadFile(*scriptPath)
		if err != nil {
			fatal(err)
		}
		src = string(b)
	}

	var trace *display.Trace
	if *record != "" {
		trace = &display.Trace{Name: "gdp-session"}
		app.Session.Tap = func(ev display.Event) { trace.Append(ev) }
	}

	params := synth.DefaultParams(*seed)
	params.Jitter = 0.4
	params.RotJitter = 0.01
	params.ScaleJitter = 0.02
	params.CornerLoopProb = 0
	driver := gdp.NewDriver(app, synth.NewGenerator(params), os.Stdout)
	driver.Shrink = *shrink
	if err := driver.Run(src); err != nil {
		fatal(err)
	}
	if trace != nil {
		if err := trace.SaveFile(*record); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "gdp: recorded %d events to %s\n", trace.Len(), *record)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "gdp: %v\n", err)
	os.Exit(1)
}
