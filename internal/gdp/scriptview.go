package gdp

import (
	"fmt"

	"repro/internal/script"
)

// ScriptView returns the GDP window as a script object, so gesture
// semantics can be written in GRANDMA's message language exactly as in the
// paper:
//
//	recog = [[view createRect] setEndpoint:0 x:<startX> y:<startY>];
//	manip = [recog setEndpoint:1 x:<currentX> y:<currentY>];
//
// The object responds to createRect, createLine, createEllipse, createDot
// and createText:, each returning a shape object (see ShapeObject).
func (a *App) ScriptView() *script.Dispatch {
	v := script.NewDispatch("gdpView")
	v.Bind("createRect", func(args []script.Value) (script.Value, error) {
		r := NewRect(0, 0, 0, 0)
		a.Scene.Add(r)
		a.logf("script: create %s", String(r))
		return a.ShapeObject(r), nil
	})
	v.Bind("createLine", func(args []script.Value) (script.Value, error) {
		l := NewLine(0, 0, 0, 0)
		a.Scene.Add(l)
		a.logf("script: create %s", String(l))
		return a.ShapeObject(l), nil
	})
	v.Bind("createEllipse", func(args []script.Value) (script.Value, error) {
		e := NewEllipse(0, 0, 0, 0)
		a.Scene.Add(e)
		a.logf("script: create %s", String(e))
		return a.ShapeObject(e), nil
	})
	v.Bind("createDot", func(args []script.Value) (script.Value, error) {
		d := NewDot(0, 0)
		a.Scene.Add(d)
		a.logf("script: create %s", String(d))
		return a.ShapeObject(d), nil
	})
	v.Bind("createText:", func(args []script.Value) (script.Value, error) {
		if err := script.Arity("createText:", args, 1); err != nil {
			return nil, err
		}
		s, err := script.Str(args[0])
		if err != nil {
			return nil, err
		}
		tx := NewText(0, 0, s)
		a.Scene.Add(tx)
		a.logf("script: create %s", String(tx))
		return a.ShapeObject(tx), nil
	})
	return v
}

// ShapeObject wraps a shape as a script object with the selectors the
// paper's semantics use:
//
//	setEndpoint:x:y:  — endpoint 0/1 of a line, corner 0/1 of a rect
//	setCenterX:y:     — center of an ellipse (or position of text/dot)
//	setRadiiX:y:      — radii of an ellipse
//	moveToX:y:        — translate so the bounds' min corner lands at (x,y)
//
// Every selector returns the receiver, enabling chained sends.
func (a *App) ShapeObject(sh Shape) *script.Dispatch {
	d := script.NewDispatch(sh.Kind())
	num2 := func(args []script.Value) (float64, float64, error) {
		x, err := script.Num(args[0])
		if err != nil {
			return 0, 0, err
		}
		y, err := script.Num(args[1])
		if err != nil {
			return 0, 0, err
		}
		return x, y, nil
	}
	d.Bind("setEndpoint:x:y:", func(args []script.Value) (script.Value, error) {
		if err := script.Arity("setEndpoint:x:y:", args, 3); err != nil {
			return nil, err
		}
		idx, err := script.Num(args[0])
		if err != nil {
			return nil, err
		}
		x, y, err := num2(args[1:])
		if err != nil {
			return nil, err
		}
		switch s := sh.(type) {
		case *Line:
			if int(idx) == 0 {
				s.X1, s.Y1 = x, y
			} else {
				s.X2, s.Y2 = x, y
			}
		case *Rect:
			if int(idx) == 0 {
				s.X1, s.Y1 = x, y
			} else {
				s.X2, s.Y2 = x, y
			}
		default:
			return nil, fmt.Errorf("gdp: %s has no endpoints", sh.Kind())
		}
		a.Session.Redraw()
		return d, nil
	})
	d.Bind("setCenterX:y:", func(args []script.Value) (script.Value, error) {
		if err := script.Arity("setCenterX:y:", args, 2); err != nil {
			return nil, err
		}
		x, y, err := num2(args)
		if err != nil {
			return nil, err
		}
		switch s := sh.(type) {
		case *Ellipse:
			s.CX, s.CY = x, y
		case *Text:
			s.X, s.Y = x, y
		case *Dot:
			s.X, s.Y = x, y
		default:
			b := sh.Bounds()
			c := b.Center()
			sh.Translate(x-c.X, y-c.Y)
		}
		a.Session.Redraw()
		return d, nil
	})
	d.Bind("setRadiiX:y:", func(args []script.Value) (script.Value, error) {
		if err := script.Arity("setRadiiX:y:", args, 2); err != nil {
			return nil, err
		}
		x, y, err := num2(args)
		if err != nil {
			return nil, err
		}
		e, ok := sh.(*Ellipse)
		if !ok {
			return nil, fmt.Errorf("gdp: %s has no radii", sh.Kind())
		}
		if x < 0 {
			x = -x
		}
		if y < 0 {
			y = -y
		}
		e.RX, e.RY = x, y
		a.Session.Redraw()
		return d, nil
	})
	d.Bind("moveToX:y:", func(args []script.Value) (script.Value, error) {
		if err := script.Arity("moveToX:y:", args, 2); err != nil {
			return nil, err
		}
		x, y, err := num2(args)
		if err != nil {
			return nil, err
		}
		b := sh.Bounds()
		sh.Translate(x-b.MinX, y-b.MinY)
		a.Session.Redraw()
		return d, nil
	})
	return d
}
