package gdp

import (
	"strings"
	"testing"

	"repro/internal/grandma"
	"repro/internal/synth"
)

func newDriver(t *testing.T) (*Driver, *strings.Builder) {
	t.Helper()
	app, err := New(Config{Recognizer: testRecognizer(t), Mode: grandma.ModeTimeout})
	if err != nil {
		t.Fatal(err)
	}
	params := synth.DefaultParams(23)
	params.Jitter = 0.4
	params.RotJitter = 0.01
	params.ScaleJitter = 0.02
	params.CornerLoopProb = 0
	var out strings.Builder
	d := NewDriver(app, synth.NewGenerator(params), &out)
	d.Shrink = 10
	return d, &out
}

func TestDriverDirectShapes(t *testing.T) {
	d, out := newDriver(t)
	script := `
# direct shape creation
rect 10 10 60 40
line 100 100 150 140
ellipse 200 60 30 20
dot 5 5
text 300 300 hello world
render
`
	if err := d.Run(script); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(d.App.Scene.Kinds(), ","); got != "rect,line,ellipse,dot,text" {
		t.Fatalf("scene = %s", got)
	}
	if d.App.Scene.Shapes()[4].(*Text).S != "hello world" {
		t.Error("multi-word text wrong")
	}
	if out.Len() == 0 {
		t.Error("render produced no output")
	}
}

func TestDriverGestureCommands(t *testing.T) {
	d, out := newDriver(t)
	script := `
twophase rect 90 60 210 150
gesture line 300 170
settext hi
log
clear
`
	if err := d.Run(script); err != nil {
		t.Fatal(err)
	}
	if d.App.Scene.Len() != 0 {
		t.Error("clear did not empty the scene")
	}
	logged := out.String()
	if !strings.Contains(logged, "recognized rect") || !strings.Contains(logged, "recognized line") {
		t.Errorf("log output missing recognitions:\n%s", logged)
	}
	if d.App.NextText != "hi" {
		t.Error("settext ignored")
	}
}

func TestDriverErrors(t *testing.T) {
	d, _ := newDriver(t)
	cases := []string{
		"gesture",               // missing class
		"gesture nosuch 10 10",  // unknown class
		"gesture rect ten 10",   // bad number
		"gesture rect 10",       // missing y
		"twophase rect 10 10 5", // missing my
		"rect 1 2 3",            // missing arg
		"text 1 2",              // missing string
		"settext",               // missing string
		"frobnicate",            // unknown command
	}
	for _, line := range cases {
		if err := d.Exec(line); err == nil {
			t.Errorf("Exec(%q) succeeded, want error", line)
		}
	}
	// Errors from Run carry the line number.
	err := d.Run("rect 1 2 3 4\nbogus\n")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("Run error = %v", err)
	}
}

func TestDriverEmptyAndComments(t *testing.T) {
	d, _ := newDriver(t)
	if err := d.Run("\n\n# nothing\n   \n"); err != nil {
		t.Fatal(err)
	}
	if err := d.Exec(""); err != nil {
		t.Fatal(err)
	}
	if d.App.Scene.Len() != 0 {
		t.Error("comments created shapes")
	}
}

func TestDriverRawRender(t *testing.T) {
	d, out := newDriver(t)
	d.Shrink = 0
	if err := d.Run("dot 5 5\nrender\n"); err != nil {
		t.Fatal(err)
	}
	// Raw canvas: one line per canvas row.
	lines := strings.Count(out.String(), "\n")
	if lines != d.App.Canvas.H {
		t.Errorf("raw render produced %d lines, canvas height %d", lines, d.App.Canvas.H)
	}
}

func TestDriverSaveLoad(t *testing.T) {
	d, _ := newDriver(t)
	path := t.TempDir() + "/scene.json"
	if err := d.Run("rect 1 1 20 10\ndot 5 5\nsave " + path + "\nclear\nload " + path + "\n"); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(d.App.Scene.Kinds(), ","); got != "rect,dot" {
		t.Fatalf("after load: %s", got)
	}
	if err := d.Exec("save"); err == nil {
		t.Error("save without path accepted")
	}
	if err := d.Exec("load /no/such/file.json"); err == nil {
		t.Error("bad load accepted")
	}
}
