package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/gesture"
	"repro/internal/recognizer"
	"repro/internal/synth"
)

// TailEffect reproduces the claim in the paper's conclusion: "Consider the
// 'move text' gesture ... after the text is selected the gesture continues
// and the destination of the text is indicated by the 'tail' of the
// gesture. The size and shape of this tail will vary greatly with each
// instance ... This variation makes the gesture difficult to recognize in
// general, especially when using a trainable recognizer. ... in a
// two-phase interaction the tail is no longer part of the gesture, but
// instead part of the manipulation. Trainable recognition techniques will
// be much more successful on the remaining prefix."
//
// One-phase condition: every gesture (training and test) carries a random
// destination tail, and the trainable recognizer must classify the whole
// stroke. Two-phase condition: the same marks without tails — what the
// classifier sees when the tail has become manipulation.
type TailEffect struct {
	OnePhaseAccuracy float64 // mean over replicates
	TwoPhaseAccuracy float64 // mean over replicates
	Replicates       int
	OnePhaseWins     int // replicates where one-phase was strictly better
	TwoPhaseWins     int // replicates where two-phase was strictly better
	TrainPerClass    int
	TestPerClass     int
}

// Format renders the comparison.
func (r *TailEffect) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== tail effect: proofreader marks, one-phase vs two-phase (paper conclusion; %d replicates) ==\n", r.Replicates)
	fmt.Fprintf(&b, "one-phase (tail in gesture) : %6.1f%%  (better in %d/%d runs)\n",
		100*r.OnePhaseAccuracy, r.OnePhaseWins, r.Replicates)
	fmt.Fprintf(&b, "two-phase (tail = manip)    : %6.1f%%  (better in %d/%d runs)\n",
		100*r.TwoPhaseAccuracy, r.TwoPhaseWins, r.Replicates)
	return b.String()
}

// tailed builds the one-phase class variants, each sample with a random
// tail direction and length — the "vary greatly with each instance" part.
// Each call re-derives tail geometry from rng, so training and test draws
// differ in exactly the way real destinations would.
func tailedSamples(classes []synth.Class, n int, seed int64) *gesture.Set {
	rng := rand.New(rand.NewSource(seed))
	gen := synth.NewGenerator(synth.DefaultParams(seed + 500))
	set := &gesture.Set{Name: "tailed"}
	for _, c := range classes {
		for i := 0; i < n; i++ {
			dx := 60 + rng.Float64()*240
			if rng.Intn(2) == 0 {
				dx = -dx
			}
			dy := rng.Float64()*260 - 130
			tc := synth.WithTail(c, dx, dy)
			s := gen.Sample(tc)
			set.Add(c.Name, s.G)
		}
	}
	return set
}

// RunTailEffect trains and tests the two conditions, averaging over
// several replicates (different seeds) to separate the effect from
// sampling noise.
func RunTailEffect(cfg Config) (*TailEffect, error) {
	classes := synth.ProofreaderClasses()
	const replicates = 8
	res := &TailEffect{
		Replicates:    replicates,
		TrainPerClass: cfg.TrainPerClass,
		TestPerClass:  cfg.TestPerClass,
	}
	for r := 0; r < replicates; r++ {
		trainSeed := cfg.TrainSeed + int64(r)*77
		testSeed := cfg.TestSeed + int64(r)*77

		// One-phase: tails everywhere.
		train1 := tailedSamples(classes, cfg.TrainPerClass, trainSeed)
		test1 := tailedSamples(classes, cfg.TestPerClass, testSeed)
		rec1, err := recognizer.Train(train1, cfg.Eager.Train)
		if err != nil {
			return nil, fmt.Errorf("experiments tail one-phase: %w", err)
		}
		acc1, _, err := rec1.Accuracy(test1)
		if err != nil {
			return nil, fmt.Errorf("experiments tail one-phase: %w", err)
		}

		// Two-phase: the classifier sees only the mark proper.
		gen := synth.NewGenerator(synth.DefaultParams(trainSeed))
		train2, _ := gen.Set("twophase-train", classes, cfg.TrainPerClass)
		gen2 := synth.NewGenerator(synth.DefaultParams(testSeed))
		test2, _ := gen2.Set("twophase-test", classes, cfg.TestPerClass)
		rec2, err := recognizer.Train(train2, cfg.Eager.Train)
		if err != nil {
			return nil, fmt.Errorf("experiments tail two-phase: %w", err)
		}
		acc2, _, err := rec2.Accuracy(test2)
		if err != nil {
			return nil, fmt.Errorf("experiments tail two-phase: %w", err)
		}

		res.OnePhaseAccuracy += acc1
		res.TwoPhaseAccuracy += acc2
		switch {
		case acc1 > acc2:
			res.OnePhaseWins++
		case acc2 > acc1:
			res.TwoPhaseWins++
		}
	}
	res.OnePhaseAccuracy /= replicates
	res.TwoPhaseAccuracy /= replicates
	return res, nil
}
