package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/recognizer"
	"repro/internal/synth"
	"repro/internal/template"
)

// BaselineRow is one recognizer's outcome on one workload.
type BaselineRow struct {
	Workload   string
	Recognizer string
	Accuracy   float64
	TrainTime  time.Duration
	Classify   time.Duration // mean per gesture
	EagerReady bool          // whether the method supports eager recognition
}

// BaselineComparison pits Rubine's statistical recognizer against the
// template-matching (nearest-neighbor) baseline — the family the paper
// cites as the trainable alternative and the ancestor of the later "$1"
// recognizers. The point the comparison makes is the paper's: template
// matching can match accuracy, but its per-classification cost scales with
// the number of stored templates (and their resampled points) rather than
// with classes x features. (The paper-era batch matcher also offered no
// subgesture machinery for eager recognition; this repo's streaming
// template backend adds a margin-based eager mode — see BACKENDS.md — so
// the eager column now reflects each recognizer's Caps, not the historic
// limitation.)
type BaselineComparison struct {
	Rows []BaselineRow
}

// Format renders the comparison.
func (b *BaselineComparison) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== baseline: Rubine statistical vs template matching (A7) ==\n")
	fmt.Fprintf(&sb, "%-8s %-12s %8s %12s %14s %7s\n", "workload", "recognizer", "acc%", "train", "classify/gest", "eager")
	for _, r := range b.Rows {
		eager := "no"
		if r.EagerReady {
			eager = "yes"
		}
		fmt.Fprintf(&sb, "%-8s %-12s %7.1f%% %12v %14v %7s\n",
			r.Workload, r.Recognizer, 100*r.Accuracy, r.TrainTime.Round(time.Microsecond),
			r.Classify.Round(time.Nanosecond), eager)
	}
	return sb.String()
}

// RunBaseline evaluates both recognizers on the fig. 9 and GDP workloads.
func RunBaseline(cfg Config) (*BaselineComparison, error) {
	out := &BaselineComparison{}
	for _, workload := range []struct {
		name    string
		classes []synth.Class
	}{
		{"fig9", synth.EightDirectionClasses()},
		{"gdp", synth.GDPClasses()},
	} {
		trainSet, _ := synth.NewGenerator(synth.DefaultParams(cfg.TrainSeed)).Set(workload.name+"-train", workload.classes, cfg.TrainPerClass)
		testSet, _ := synth.NewGenerator(synth.DefaultParams(cfg.TestSeed)).Set(workload.name+"-test", workload.classes, cfg.TestPerClass)

		// Rubine's statistical recognizer.
		start := time.Now()
		rub, err := recognizer.Train(trainSet, cfg.Eager.Train)
		if err != nil {
			return nil, err
		}
		rubTrain := time.Since(start)
		start = time.Now()
		const reps = 5
		var rubAcc float64
		for i := 0; i < reps; i++ {
			rubAcc, _, err = rub.Accuracy(testSet)
			if err != nil {
				return nil, err
			}
		}
		rubClassify := time.Since(start) / time.Duration(reps*testSet.Len())
		out.Rows = append(out.Rows, BaselineRow{
			Workload: workload.name, Recognizer: "rubine",
			Accuracy: rubAcc, TrainTime: rubTrain, Classify: rubClassify,
			EagerReady: true,
		})

		// Template baseline.
		start = time.Now()
		tmpl, err := template.Train(trainSet, template.DefaultOptions())
		if err != nil {
			return nil, err
		}
		tmplTrain := time.Since(start)
		start = time.Now()
		var tmplAcc float64
		for i := 0; i < reps; i++ {
			tmplAcc, err = tmpl.Accuracy(testSet)
			if err != nil {
				return nil, err
			}
		}
		tmplClassify := time.Since(start) / time.Duration(reps*testSet.Len())
		out.Rows = append(out.Rows, BaselineRow{
			Workload: workload.name, Recognizer: "template",
			Accuracy: tmplAcc, TrainTime: tmplTrain, Classify: tmplClassify,
			EagerReady: tmpl.Caps().Eager,
		})
	}
	return out, nil
}
