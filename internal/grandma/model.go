package grandma

// GRANDMA "is a Model/View/Controller-like system: models are application
// objects, views are objects responsible for displaying models, and event
// handlers deal with input directed at views" (§3). This file supplies the
// model half: an embeddable change-notification subject, so application
// objects can announce mutations and views (or the session) can repaint
// without the semantics code calling Redraw by hand.

// Subject is an embeddable observable. The zero value is ready to use.
// Observers are called synchronously, in registration order, whenever
// NotifyChanged runs. Not safe for concurrent use — GRANDMA interfaces are
// single-threaded event loops, as the paper's was.
type Subject struct {
	observers []*observer
}

type observer struct {
	fn      func()
	removed bool
}

// Observe registers a change observer and returns a function that removes
// it. Removal during notification is safe; the removed observer simply
// stops being called.
func (s *Subject) Observe(fn func()) (remove func()) {
	o := &observer{fn: fn}
	s.observers = append(s.observers, o)
	return func() { o.removed = true }
}

// NotifyChanged invokes every live observer and compacts removed ones.
func (s *Subject) NotifyChanged() {
	live := s.observers[:0]
	for _, o := range s.observers {
		if o.removed {
			continue
		}
		live = append(live, o)
	}
	s.observers = live
	// Iterate over a snapshot: observers registered during notification
	// run from the next change on.
	snapshot := append([]*observer(nil), s.observers...)
	for _, o := range snapshot {
		if !o.removed {
			o.fn()
		}
	}
}

// ObserverCount returns the number of live observers (for tests).
func (s *Subject) ObserverCount() int {
	n := 0
	for _, o := range s.observers {
		if !o.removed {
			n++
		}
	}
	return n
}

// Observable is anything exposing a Subject — typically via embedding.
type Observable interface {
	ModelSubject() *Subject
}

// ModelSubject implements Observable for types that embed Subject.
func (s *Subject) ModelSubject() *Subject { return s }

// BindModel wires a model's change notifications to the session: any
// NotifyChanged invalidates the display, and the session repaints after
// the current event completes (coalescing repeated changes within one
// event). It returns the observer-removal function.
func (sess *Session) BindModel(m Observable) (remove func()) {
	return m.ModelSubject().Observe(sess.Invalidate)
}

// Invalidate marks the display dirty; the session repaints after the
// in-flight event (or immediately when idle).
func (sess *Session) Invalidate() {
	if sess.inEvent {
		sess.dirty = true
		return
	}
	sess.Redraw()
}
