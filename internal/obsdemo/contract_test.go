package obsdemo

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// metricNameRe matches backquoted metric names in OBSERVABILITY.md's
// contract tables: dotted lowercase segments (digits allowed after the
// first rune, as in e2e_ns or decide_p99), possibly containing the
// <role>/<class> placeholders.
var metricNameRe = regexp.MustCompile("`((?:[a-z_][a-z0-9_]*|<[a-z]+>)(?:\\.(?:[a-z_][a-z0-9_]*|<[a-z]+>))+)`")

// roles are the classifier instrumentation prefixes the recognizer
// registers; <role> in the document expands over these.
var roles = []string{"full", "auc"}

// docMetricNames parses OBSERVABILITY.md and returns the documented
// concrete metric names plus the documented wildcard prefixes (from
// names ending in the <class> placeholder), with <role> expanded.
func docMetricNames(t *testing.T) (names map[string]bool, wildcards []string) {
	t.Helper()
	raw, err := os.ReadFile("../../OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	names = map[string]bool{}
	for _, line := range strings.Split(string(raw), "\n") {
		// Contract rows are table lines whose first cell is the name.
		if !strings.HasPrefix(line, "| `") {
			continue
		}
		m := metricNameRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		for _, name := range expandRoles(m[1]) {
			if suffix, ok := strings.CutSuffix(name, "<class>"); ok {
				wildcards = append(wildcards, suffix)
				continue
			}
			if strings.Contains(name, "<") {
				t.Fatalf("unexpanded placeholder in documented metric %q", name)
			}
			names[name] = true
		}
	}
	if len(names) == 0 {
		t.Fatal("no metric names parsed from OBSERVABILITY.md — format drifted?")
	}
	return names, wildcards
}

// spanNameRe matches the leading backquoted span name of a "Span names"
// table row: a single undotted lowercase word (dotted names are
// metrics, handled by metricNameRe).
var spanNameRe = regexp.MustCompile("^\\| `([a-z_]+)` \\|")

// docSpanNames parses the "### Span names" table of OBSERVABILITY.md
// and returns the documented span names.
func docSpanNames(t *testing.T) map[string]bool {
	t.Helper()
	raw, err := os.ReadFile("../../OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	inSection := false
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "#") {
			inSection = strings.HasPrefix(line, "### Span names")
			continue
		}
		if !inSection {
			continue
		}
		if m := spanNameRe.FindStringSubmatch(line); m != nil {
			names[m[1]] = true
		}
	}
	if len(names) == 0 {
		t.Fatal("no span names parsed from OBSERVABILITY.md — format drifted?")
	}
	return names
}

func expandRoles(name string) []string {
	if !strings.Contains(name, "<role>") {
		return []string{name}
	}
	out := make([]string, 0, len(roles))
	for _, r := range roles {
		out = append(out, strings.ReplaceAll(name, "<role>", r))
	}
	return out
}

// TestContractMatchesDocument checks OBSERVABILITY.md against a live
// snapshot of the demo workload in both directions: every documented
// metric is registered, and every registered metric is documented.
func TestContractMatchesDocument(t *testing.T) {
	doc, wildcards := docMetricNames(t)

	reg, err := Run(1)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	live := map[string]bool{}
	for _, c := range snap.Counters {
		live[c.Name] = true
	}
	for _, h := range snap.Histograms {
		live[h.Name] = true
	}
	for _, g := range snap.Gauges {
		live[g.Name] = true
	}
	for _, w := range snap.Windows {
		live[w.Name] = true
	}
	// The trace ring and span buffers are named in prose ("serve.trace",
	// "gesture.spans", "wire.spans"), not a metric table; account for
	// them explicitly.
	for _, tr := range snap.Traces {
		if tr.Name != "serve.trace" {
			t.Errorf("trace ring %q is not in the OBSERVABILITY.md contract", tr.Name)
		}
	}
	for _, sb := range snap.Spans {
		if sb.Name != "gesture.spans" && sb.Name != "wire.spans" {
			t.Errorf("span buffer %q is not in the OBSERVABILITY.md contract", sb.Name)
		}
	}

	// Span names, both directions: every documented span name occurs in
	// the workload's buffer, and every recorded span name is documented.
	// The demo buffer has eviction-free headroom (obsdemo.SpanCapacity),
	// so the name set is deterministic.
	docSpans := docSpanNames(t)
	liveSpans := map[string]bool{}
	for _, sb := range snap.Spans {
		for _, r := range sb.Spans {
			liveSpans[r.Name] = true
		}
	}
	for name := range docSpans {
		if !liveSpans[name] {
			t.Errorf("OBSERVABILITY.md documents span %q, but the demo workload never records it", name)
		}
	}
	for name := range liveSpans {
		if !docSpans[name] {
			t.Errorf("span %q is recorded but not documented in OBSERVABILITY.md", name)
		}
	}

	// Document -> snapshot: every documented name must be registered.
	for name := range doc {
		if !live[name] {
			t.Errorf("OBSERVABILITY.md documents %s, but the demo workload never registers it", name)
		}
	}
	// Every documented wildcard prefix must match something.
	for _, prefix := range wildcards {
		found := false
		for name := range live {
			if strings.HasPrefix(name, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("OBSERVABILITY.md documents the family %s<class>, but nothing registered matches", prefix)
		}
	}

	// Snapshot -> document: every registered name must be documented,
	// directly or via a wildcard family.
	for name := range live {
		if doc[name] {
			continue
		}
		covered := false
		for _, prefix := range wildcards {
			if strings.HasPrefix(name, prefix) {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("metric %s is registered but not documented in OBSERVABILITY.md", name)
		}
	}
}
