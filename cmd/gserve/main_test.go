package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

func testServer(t *testing.T) *server {
	t.Helper()
	srv, err := newServer(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.engine.Close() })
	if err := srv.playTraffic(6); err != nil {
		t.Fatal(err)
	}
	return srv
}

func get(t *testing.T, srv *server, path string) *httptest.ResponseRecorder {
	t.Helper()
	rr := httptest.NewRecorder()
	srv.mux.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, path, nil))
	return rr
}

func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t)
	rr := get(t, srv, "/metrics")
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Content-Type = %q", ct)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics body is not a Snapshot: %v", err)
	}
	if snap.Schema != obs.SnapshotSchema {
		t.Errorf("schema = %d, want %d", snap.Schema, obs.SnapshotSchema)
	}
	found := false
	for _, c := range snap.Counters {
		if c.Name == "serve.events.submitted" && c.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Error("startup traffic not visible in serve.events.submitted")
	}
}

func TestMetricsTextEndpoint(t *testing.T) {
	srv := testServer(t)
	rr := get(t, srv, "/metrics.txt")
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /metrics.txt = %d", rr.Code)
	}
	body := rr.Body.String()
	for _, want := range []string{"serve.events.submitted", "eager.decide_ns", "serve.trace"} {
		if !strings.Contains(body, want) {
			t.Errorf("text report missing %q", want)
		}
	}
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	if rr := get(t, srv, "/healthz"); rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), "ok") {
		t.Fatalf("GET /healthz = %d %q", rr.Code, rr.Body.String())
	}
}

func TestSwapEndpoint(t *testing.T) {
	srv := testServer(t)
	before := srv.engine.Recognizer()

	rr := httptest.NewRecorder()
	srv.mux.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/swap", nil))
	if rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /swap = %d, want 405", rr.Code)
	}

	rr = httptest.NewRecorder()
	srv.mux.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/swap", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("POST /swap = %d: %s", rr.Code, rr.Body.String())
	}
	var resp struct {
		Swapped bool  `json:"swapped"`
		Seed    int64 `json:"seed"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Swapped {
		t.Error("swap response reports swapped=false")
	}
	if srv.engine.Recognizer() == before {
		t.Error("engine still serves the pre-swap recognizer")
	}
}

func TestPprofIndex(t *testing.T) {
	srv := testServer(t)
	rr := get(t, srv, "/debug/pprof/")
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), "goroutine") {
		t.Fatalf("GET /debug/pprof/ = %d", rr.Code)
	}
}
