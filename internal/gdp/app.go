package gdp

import (
	"fmt"
	"math"

	"repro/internal/display"
	"repro/internal/eager"
	"repro/internal/geom"
	"repro/internal/grandma"
	"repro/internal/mathx"
	"repro/internal/raster"
	"repro/internal/synth"
)

// Config configures a GDP instance.
type Config struct {
	// Width and Height size the canvas (and the window view). Defaults:
	// 600 x 400.
	Width, Height int
	// Mode selects the phase-transition technique. The default (zero
	// value) is ModeMouseUp; use ModeEager for the paper's flagship
	// interaction.
	Mode grandma.TransitionMode
	// Timeout overrides the 200 ms motionless timeout for ModeTimeout.
	Timeout float64
	// Recognizer supplies a pre-trained eager recognizer. When nil, one is
	// trained on the synthetic GDP set using TrainSeed/TrainPerClass.
	Recognizer *eager.Recognizer
	// TrainSeed seeds the training-set generator (default 1).
	TrainSeed int64
	// TrainPerClass is the number of training examples per class
	// (default 15, the paper's "typically we train with 15 examples").
	TrainPerClass int
	// Modified enables the paper's "modified version of GDP": the initial
	// angle of the rectangle gesture determines the rectangle's
	// orientation with respect to the horizontal, and the length of the
	// line gesture determines the line's thickness. For orientation to
	// work, the rectangle gesture must be trained in multiple orientations
	// (see synth.RotatedClass).
	Modified bool
}

// App is a running GDP: a scene, a GRANDMA session over it, and the eleven
// gesture semantics of figure 3.
type App struct {
	Scene   *Scene
	Canvas  *raster.Canvas
	Session *grandma.Session
	Handler *grandma.GestureHandler
	Root    *grandma.View
	// Log records recognitions and semantic actions, newest last.
	Log []string
	// PickTol is the touch tolerance, in pixels, for object picking.
	PickTol float64
	// NextText is the string the next text gesture inserts.
	NextText string

	controlPoints []*grandma.View
	editTarget    Shape
	modified      bool
}

// New builds a GDP instance, training a recognizer if none is supplied.
func New(cfg Config) (*App, error) {
	if cfg.Width <= 0 {
		cfg.Width = 600
	}
	if cfg.Height <= 0 {
		cfg.Height = 400
	}
	rec := cfg.Recognizer
	if rec == nil {
		seed := cfg.TrainSeed
		if seed == 0 {
			seed = 1
		}
		per := cfg.TrainPerClass
		if per == 0 {
			per = 15
		}
		trainSet, _ := synth.NewGenerator(synth.DefaultParams(seed)).Set("gdp-train", synth.GDPClasses(), per)
		var err error
		rec, _, err = eager.Train(trainSet, eager.DefaultOptions())
		if err != nil {
			return nil, fmt.Errorf("gdp: training recognizer: %w", err)
		}
	}

	app := &App{
		Scene:    NewScene(),
		Canvas:   raster.NewCanvas(cfg.Width, cfg.Height),
		PickTol:  6,
		NextText: "text",
		modified: cfg.Modified,
	}

	var h *grandma.GestureHandler
	if cfg.Mode == grandma.ModeEager {
		h = grandma.NewEagerGestureHandler(rec)
	} else {
		h = grandma.NewGestureHandler(rec.Full, cfg.Mode)
	}
	h.Timeout = cfg.Timeout
	h.OnRecognized = func(class string, a *grandma.Attrs) {
		app.logf("recognized %s at (%.0f,%.0f) after %d points", class, a.CurrentX, a.CurrentY, len(a.GesturePoints))
	}
	app.Handler = h

	windowClass := grandma.NewViewClass("GdpWindow", nil)
	windowClass.AddHandler(h)
	root := grandma.NewView("gdp", windowClass)
	root.Frame = geom.Rect{MinX: 0, MinY: 0, MaxX: float64(cfg.Width), MaxY: float64(cfg.Height)}
	root.DrawFunc = func(c *raster.Canvas, v *grandma.View) { app.Scene.Draw(c) }
	app.Root = root
	app.Session = grandma.NewSession(root, app.Canvas)

	app.registerSemantics()
	return app, nil
}

func (a *App) logf(format string, args ...any) {
	a.Log = append(a.Log, fmt.Sprintf(format, args...))
}

// pick returns the topmost shape at (x, y).
func (a *App) pick(x, y float64) Shape {
	return a.Scene.TopAt(geom.Pt(x, y), a.PickTol)
}

// dragState carries a shape being positioned during manipulation (move and
// copy gestures).
type dragState struct {
	target       Shape
	lastX, lastY float64
}

func (st *dragState) track(x, y float64) {
	if st.target != nil {
		st.target.Translate(x-st.lastX, y-st.lastY)
	}
	st.lastX, st.lastY = x, y
}

// rsState carries the rotate-scale manipulation: the paper's "initial point
// ... determines the center of rotation; the final point ... a point (not
// necessarily on the object) that will be dragged around to interactively
// manipulate the object's size and orientation".
type rsState struct {
	target   Shape
	center   geom.Point
	refAngle float64
	refLen   float64
	refValid bool
}

func (st *rsState) track(x, y float64) {
	if st.target == nil {
		return
	}
	v := geom.Pt(x, y).Sub(st.center)
	l := v.Norm()
	if l < 3 {
		return // too close to the center to define an angle
	}
	if !st.refValid {
		st.refAngle, st.refLen, st.refValid = v.Angle(), l, true
		return
	}
	dA := mathx.NormalizeAngle(v.Angle() - st.refAngle)
	s := mathx.Clamp(l/st.refLen, 0.2, 5)
	st.target.RotateScale(st.center, dA, s)
	st.refAngle, st.refLen = v.Angle(), l
}

// registerSemantics wires the eleven gesture classes of figure 3.
func (a *App) registerSemantics() {
	reg := a.Handler.Register

	// rect: corner 1 at recognition; corner 2 by manipulation
	// ("rubberbanding"). In the modified GDP, the gesture's initial angle
	// sets the rectangle's orientation: the canonical rect gesture starts
	// straight down (angle pi/2), so the deviation from pi/2 becomes the
	// rectangle's tilt from the horizontal.
	reg("rect", &grandma.Semantics{
		Recog: func(at *grandma.Attrs) any {
			r := NewRect(at.StartX, at.StartY, at.CurrentX, at.CurrentY)
			if a.modified {
				r.Angle = mathx.NormalizeAngle(at.InitialAngle() - math.Pi/2)
			}
			a.Scene.Add(r)
			a.logf("create %s", String(r))
			return r
		},
		Manip: func(at *grandma.Attrs) {
			if r, ok := at.Recog.(*Rect); ok {
				r.X2, r.Y2 = at.CurrentX, at.CurrentY
			}
		},
	})

	// line: endpoint 1 at recognition; endpoint 2 by manipulation. In the
	// modified GDP, the gesture's length sets the line's thickness.
	reg("line", &grandma.Semantics{
		Recog: func(at *grandma.Attrs) any {
			l := NewLine(at.StartX, at.StartY, at.CurrentX, at.CurrentY)
			if a.modified {
				l.Thickness = math.Max(1, math.Round(at.GestureLength()/40))
			}
			a.Scene.Add(l)
			a.logf("create %s", String(l))
			return l
		},
		Manip: func(at *grandma.Attrs) {
			if l, ok := at.Recog.(*Line); ok {
				l.X2, l.Y2 = at.CurrentX, at.CurrentY
			}
		},
	})

	// ellipse: center at recognition; size and eccentricity by
	// manipulation.
	reg("ellipse", &grandma.Semantics{
		Recog: func(at *grandma.Attrs) any {
			e := NewEllipse(at.StartX, at.StartY, math.Abs(at.CurrentX-at.StartX), math.Abs(at.CurrentY-at.StartY))
			a.Scene.Add(e)
			a.logf("create %s", String(e))
			return e
		},
		Manip: func(at *grandma.Attrs) {
			if e, ok := at.Recog.(*Ellipse); ok {
				e.RX = math.Abs(at.CurrentX - e.CX)
				e.RY = math.Abs(at.CurrentY - e.CY)
			}
		},
	})

	// text: created at the gesture start; location adjustable during
	// manipulation.
	reg("text", &grandma.Semantics{
		Recog: func(at *grandma.Attrs) any {
			tx := NewText(at.StartX, at.StartY, a.NextText)
			a.Scene.Add(tx)
			a.logf("create %s", String(tx))
			return tx
		},
		Manip: func(at *grandma.Attrs) {
			if tx, ok := at.Recog.(*Text); ok {
				tx.X, tx.Y = at.CurrentX, at.CurrentY
			}
		},
	})

	// dot: a point at the gesture start.
	reg("dot", &grandma.Semantics{
		Recog: func(at *grandma.Attrs) any {
			d := NewDot(at.StartX, at.StartY)
			a.Scene.Add(d)
			a.logf("create %s", String(d))
			return d
		},
	})

	// move: object at the gesture start; position by manipulation.
	reg("move", &grandma.Semantics{
		Recog: func(at *grandma.Attrs) any {
			sh := a.pick(at.StartX, at.StartY)
			if sh == nil {
				a.logf("move: nothing at (%.0f,%.0f)", at.StartX, at.StartY)
			} else {
				a.logf("move %s", String(sh))
			}
			return &dragState{target: sh, lastX: at.CurrentX, lastY: at.CurrentY}
		},
		Manip: func(at *grandma.Attrs) {
			if st, ok := at.Recog.(*dragState); ok {
				st.track(at.CurrentX, at.CurrentY)
			}
		},
	})

	// copy: replicate the object at the gesture start; position the copy
	// by manipulation.
	reg("copy", &grandma.Semantics{
		Recog: func(at *grandma.Attrs) any {
			src := a.pick(at.StartX, at.StartY)
			st := &dragState{lastX: at.CurrentX, lastY: at.CurrentY}
			if src == nil {
				a.logf("copy: nothing at (%.0f,%.0f)", at.StartX, at.StartY)
				return st
			}
			cp := src.Clone()
			a.Scene.Add(cp)
			st.target = cp
			a.logf("copy %s -> %s", String(src), String(cp))
			return st
		},
		Manip: func(at *grandma.Attrs) {
			if st, ok := at.Recog.(*dragState); ok {
				st.track(at.CurrentX, at.CurrentY)
			}
		},
	})

	// delete: the object at the gesture start; any additional objects
	// touched during manipulation are also deleted.
	reg("delete", &grandma.Semantics{
		Recog: func(at *grandma.Attrs) any {
			if sh := a.pick(at.StartX, at.StartY); sh != nil {
				a.Scene.Remove(sh)
				a.logf("delete %s", String(sh))
			} else {
				a.logf("delete: nothing at (%.0f,%.0f)", at.StartX, at.StartY)
			}
			return nil
		},
		Manip: func(at *grandma.Attrs) {
			if sh := a.pick(at.CurrentX, at.CurrentY); sh != nil {
				a.Scene.Remove(sh)
				a.logf("delete (touch) %s", String(sh))
			}
		},
	})

	// group: composite of the enclosed objects; touching other objects
	// during manipulation adds them.
	reg("group", &grandma.Semantics{
		Recog: func(at *grandma.Attrs) any {
			// Lasso enclosure: a shape is grouped when it lies inside the
			// polygon traced by the gesture (not merely its bounding box).
			members := a.Scene.EnclosedByPolygon(at.GesturePoints.Polygon())
			grp := NewGroup(nil)
			for _, m := range members {
				a.Scene.Remove(m)
				grp.Add(m)
			}
			a.Scene.Add(grp)
			a.logf("group %d objects", len(members))
			return grp
		},
		Manip: func(at *grandma.Attrs) {
			grp, ok := at.Recog.(*Group)
			if !ok {
				return
			}
			if sh := a.pick(at.CurrentX, at.CurrentY); sh != nil && sh != Shape(grp) {
				a.Scene.Remove(sh)
				grp.Add(sh)
				a.logf("group add %s", String(sh))
			}
		},
	})

	// rotate-scale: center of rotation at the gesture start; the current
	// point is dragged to rotate and scale the object.
	reg("rotate-scale", &grandma.Semantics{
		Recog: func(at *grandma.Attrs) any {
			center := geom.Pt(at.StartX, at.StartY)
			sh := a.pick(at.StartX, at.StartY)
			if sh == nil {
				a.logf("rotate-scale: nothing at (%.0f,%.0f)", at.StartX, at.StartY)
			} else {
				a.logf("rotate-scale %s", String(sh))
			}
			st := &rsState{target: sh, center: center}
			st.track(at.CurrentX, at.CurrentY)
			return st
		},
		Manip: func(at *grandma.Attrs) {
			if st, ok := at.Recog.(*rsState); ok {
				st.track(at.CurrentX, at.CurrentY)
			}
		},
	})

	// edit: bring up control points on the object; the control points are
	// plain direct-manipulation views (gesture and direct manipulation in
	// the same interface).
	reg("edit", &grandma.Semantics{
		Recog: func(at *grandma.Attrs) any {
			sh := a.pick(at.StartX, at.StartY)
			a.ShowControlPoints(sh)
			if sh == nil {
				a.logf("edit: nothing at (%.0f,%.0f)", at.StartX, at.StartY)
			} else {
				a.logf("edit %s: %d control points", String(sh), len(a.controlPoints))
			}
			return sh
		},
	})
}

// ShowControlPoints replaces the current control points with ones for the
// given shape (nil clears them). Each control point is a small draggable
// view; dragging a corner scales the shape about the opposite corner.
func (a *App) ShowControlPoints(sh Shape) {
	a.ClearControlPoints()
	a.editTarget = sh
	if sh == nil {
		return
	}
	b := sh.Bounds()
	corners := [4]geom.Point{
		{X: b.MinX, Y: b.MinY}, {X: b.MaxX, Y: b.MinY},
		{X: b.MaxX, Y: b.MaxY}, {X: b.MinX, Y: b.MaxY},
	}
	for i := range corners {
		corner := corners[i]
		anchor := corners[(i+2)%4] // opposite corner
		cp := grandma.NewView(fmt.Sprintf("cp%d", i), nil)
		const r = 3
		cp.Frame = geom.Rect{MinX: corner.X - r, MinY: corner.Y - r, MaxX: corner.X + r, MaxY: corner.Y + r}
		cp.Z = 100
		cp.DrawFunc = func(c *raster.Canvas, v *grandma.View) {
			ctr := v.Frame.Center()
			c.SetF(ctr.X, ctr.Y, 'x')
		}
		prev := corner
		cp.AddHandler(&grandma.DragHandler{
			OnMove: func(v *grandma.View, dx, dy float64) {
				cur := v.Frame.Center()
				oldD := prev.Dist(anchor)
				newD := cur.Dist(anchor)
				if oldD > 1e-6 && newD > 1e-6 {
					sh.RotateScale(anchor, 0, newD/oldD)
				}
				prev = cur
			},
			OnDone: func(v *grandma.View) {
				a.logf("edit: scaled %s", String(sh))
			},
		})
		a.Root.AddChild(cp)
		a.controlPoints = append(a.controlPoints, cp)
	}
	a.Session.Redraw()
}

// ClearControlPoints removes any control-point views.
func (a *App) ClearControlPoints() {
	for _, cp := range a.controlPoints {
		a.Root.RemoveChild(cp)
	}
	a.controlPoints = nil
	a.editTarget = nil
}

// ControlPointViews returns the live control-point views (for tests and
// demos).
func (a *App) ControlPointViews() []*grandma.View { return a.controlPoints }

// shiftToNow rebases a path's timestamps so it starts just after the
// session's current virtual time (interactions must move forward in time).
func (a *App) shiftToNow(p geom.Path) geom.Path {
	if len(p) == 0 {
		return p
	}
	return p.TimeShift(a.Session.Display.Now() + 0.05 - p[0].T)
}

// PlayGesture replays a gesture path as a press-draw-release interaction.
func (a *App) PlayGesture(p geom.Path) {
	p = a.shiftToNow(p)
	a.Session.Replay(display.StrokeTrace(p, display.LeftButton, 0.01))
}

// PlayTwoPhase replays a gesture followed by an explicit manipulation
// phase: draw the gesture, hold motionless for hold seconds (long enough
// to trip a timeout transition when one is configured), then visit each
// manipulation point, then release.
func (a *App) PlayTwoPhase(gesturePath geom.Path, hold float64, manip []geom.Point) {
	p := a.shiftToNow(gesturePath)
	evs := display.StrokeTrace(p, display.LeftButton, 0)
	evs = evs[:len(evs)-1] // drop the auto mouse-up
	last := p[len(p)-1]
	t := last.T + hold
	x, y := last.X, last.Y
	for _, m := range manip {
		t += 0.02
		x, y = m.X, m.Y
		evs = append(evs, display.Event{Kind: display.MouseMove, X: x, Y: y, Time: t})
	}
	evs = append(evs, display.Event{Kind: display.MouseUp, X: x, Y: y, Time: t + 0.02})
	a.Session.Replay(evs)
}

// Drag replays a direct-manipulation drag from one point to another (used
// to exercise control points).
func (a *App) Drag(from, to geom.Point, steps int) {
	a.Session.Replay(display.DragTrace(from, to, steps, a.Session.Display.Now()+0.05, 0.2, display.LeftButton))
}

// Render repaints and returns the canvas as ASCII.
func (a *App) Render() string {
	a.Session.Redraw()
	return a.Canvas.String()
}

// LastLog returns the most recent log line, or "".
func (a *App) LastLog() string {
	if len(a.Log) == 0 {
		return ""
	}
	return a.Log[len(a.Log)-1]
}
