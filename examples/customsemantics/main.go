// Customsemantics: define gesture semantics in GRANDMA's interpreted
// message language — the exact mechanism (and the exact rectangle
// semantics text) from section 3.2 of the paper:
//
//	recog = [[view createRect] setEndpoint:0 x:<startX> y:<startY>];
//	manip = [recog setEndpoint:1 x:<currentX> y:<currentY>];
//	done  = nil;
//
// The expressions are parsed once and evaluated against GDP's script
// objects at the phase transition (recog), on every manipulation point
// (manip), and at mouse-up (done), with gestural attributes such as
// <startX> bound lazily into the environment.
package main

import (
	"fmt"
	"log"

	rubine "repro"
	"repro/internal/grandma"
	"repro/internal/script"
)

func main() {
	app, err := rubine.NewGDP(rubine.GDPConfig{Mode: rubine.ModeTimeout})
	if err != nil {
		log.Fatal(err)
	}

	bind := func(a *grandma.Attrs, env *script.Env) {
		env.SetVar("view", app.ScriptView())
	}
	onErr := func(e error) { log.Printf("semantics error: %v", e) }

	// Replace the built-in Go-closure semantics for three gesture classes
	// with interpreted ones.
	rectSem, err := grandma.ScriptSemantics(
		"recog = [[view createRect] setEndpoint:0 x:<startX> y:<startY>]",
		"[recog setEndpoint:1 x:<currentX> y:<currentY>]",
		"nil",
		bind, onErr,
	)
	if err != nil {
		log.Fatal(err)
	}
	app.Handler.Register("rect", rectSem)

	lineSem, err := grandma.ScriptSemantics(
		"recog = [[view createLine] setEndpoint:0 x:<startX> y:<startY>]",
		"[recog setEndpoint:1 x:<currentX> y:<currentY>]",
		"nil",
		bind, onErr,
	)
	if err != nil {
		log.Fatal(err)
	}
	app.Handler.Register("line", lineSem)

	// An ellipse whose size snaps to fixed radii at the end of the
	// interaction: recog creates it, manip tracks the mouse, done snaps —
	// demonstrating all three evaluation times.
	ellipseSem, err := grandma.ScriptSemantics(
		"recog = [[view createEllipse] setCenterX:<startX> y:<startY>]",
		"[recog setRadiiX:30 y:18]; [recog setCenterX:<currentX> y:<currentY>]",
		"[recog setRadiiX:40 y:24]",
		bind, onErr,
	)
	if err != nil {
		log.Fatal(err)
	}
	app.Handler.Register("ellipse", ellipseSem)

	// Drive the interface with synthesized strokes.
	params := rubine.DefaultGenParams(21)
	params.Jitter = 0.4
	params.CornerLoopProb = 0
	gen := rubine.NewGenerator(params)
	classes := map[string]rubine.GestureClass{}
	for _, c := range rubine.Classes(rubine.GDPSet) {
		classes[c.Name] = c
	}

	app.PlayTwoPhase(gen.SampleAt(classes["rect"], rubine.Pt(70, 50)).G.Points,
		0.3, []rubine.Point{{X: 190, Y: 130}})
	app.PlayGesture(gen.SampleAt(classes["line"], rubine.Pt(260, 60)).G.Points)
	app.PlayTwoPhase(gen.SampleAt(classes["ellipse"], rubine.Pt(460, 220)).G.Points,
		0.3, []rubine.Point{{X: 480, Y: 260}})

	fmt.Println("interaction log:")
	for _, l := range app.Log {
		fmt.Println(" ", l)
	}
	fmt.Printf("\nscene: %v\n\n", app.Scene.Kinds())
	app.Render()
	fmt.Print(app.Canvas.Downsample(5, 10).String())
}
