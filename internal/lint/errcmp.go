package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Errcmp reports == and != comparisons against exported error sentinels
// (package-level `var ErrX = errors.New(...)` values). Since the serving
// layer started wrapping sentinels — ErrBadEvent carries the offending
// field, ErrShed wraps the last ErrQueueFull — a direct identity
// comparison silently stops matching the moment a path adds context with
// fmt.Errorf("%w", ...). errors.Is unwraps; == does not. Comparisons
// with nil are fine (they test presence, not identity), and unlike most
// analyzers in this suite, _test.go files are NOT exempt: tests that
// pin behavior with `err == ErrX` are exactly the ones that break
// when wrapping is introduced.
var Errcmp = &Analyzer{
	Name: "errcmp",
	Doc: "flag == and != against Err* sentinel values (including in _test.go files); " +
		"wrapped errors never compare equal, so use errors.Is or //lint:ignore errcmp <reason>.",
	Run: runErrcmp,
}

func runErrcmp(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if isNilIdent(pass, be.X) || isNilIdent(pass, be.Y) {
				return true // err != nil tests presence, not identity
			}
			name, ok := sentinelName(pass, be.X)
			if !ok {
				name, ok = sentinelName(pass, be.Y)
			}
			if !ok {
				return true
			}
			pass.Reportf(be.OpPos, "%s against error sentinel %s; use errors.Is", be.Op, name)
			return true
		})
	}
	return nil
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(pass *Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.Info.Uses[id].(*types.Nil)
	return isNil
}

// sentinelName resolves e to a package-level variable of type error whose
// name starts with "Err" — the repo's sentinel naming convention — and
// returns its name. Both plain identifiers (ErrEmptySet) and selectors
// (serve.ErrQueueFull) resolve through Info.Uses.
func sentinelName(pass *Pass, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch v := e.(type) {
	case *ast.Ident:
		id = v
	case *ast.SelectorExpr:
		id = v.Sel
	default:
		return "", false
	}
	obj, ok := pass.Info.Uses[id]
	if !ok {
		return "", false
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !strings.HasPrefix(v.Name(), "Err") || !isErrorType(v.Type()) {
		return "", false
	}
	return v.Name(), true
}
