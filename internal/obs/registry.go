package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"
	"time"
)

// SnapshotSchema is the version of the Snapshot structure (and therefore
// of the JSON documents cmd/gserve and cmd/gbench emit under their
// "metrics" keys). Bump it whenever a field is renamed, removed, or
// changes meaning; adding metrics does not bump it.
const SnapshotSchema = 1

// Registry names and owns a process's instruments. Accessors register on
// first use and return the same instrument for the same name thereafter,
// so independent packages can share metrics by name. A nil *Registry is
// fully usable: every accessor returns nil, which every instrument
// treats as "disabled" — instrumented code never branches on whether
// observability is attached.
//
// Concurrency: all methods are safe for concurrent use. Registration
// takes a mutex; the instruments themselves are lock-free (see Counter,
// Histogram, Ring).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	windows  map[string]windowed
	rings    map[string]*Ring
	spans    map[string]*SpanBuffer
	// clk is the clock windowed instruments rotate on: the wall clock
	// until SetClock installs another (serve.New forwards its virtual
	// clock here). Atomic so SetClock is safe against concurrent
	// observations.
	clk clockSource
}

// windowed is the registry's common handle on the two windowed
// instrument kinds — exactly one of the fields is non-nil.
type windowed struct {
	c *WindowedCounter
	h *WindowedHistogram
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		windows:  make(map[string]windowed),
		rings:    make(map[string]*Ring),
		spans:    make(map[string]*SpanBuffer),
	}
}

// SetClock installs the clock windowed instruments rotate on — the hook
// that lets the serving engine's virtual clock (fault.ManualClock)
// drive window rotation deterministically in tests. A nil c restores
// the wall clock. Safe for concurrent use; a no-op on a nil registry.
func (r *Registry) SetClock(c Clock) {
	if r == nil {
		return
	}
	if c == nil {
		r.clk.set(nil)
		return
	}
	r.clk.set(c)
}

// Counter returns the named counter, registering it on first use.
// Returns nil (the disabled instrument) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, registering it with the given
// bucket boundaries on first use. Later calls return the existing
// histogram regardless of the bounds argument — boundaries are fixed at
// registration, which is what keeps snapshots structurally
// deterministic. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Gauge returns the named gauge, registering it on first use. Returns
// nil (the disabled instrument) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// WindowedCounter returns the named windowed counter, registering it on
// first use with the given slot duration and slot count (non-positive
// values select DefaultWindowSlot / DefaultWindowSlots). Later calls
// return the existing instrument regardless of the sizing arguments —
// ring geometry is fixed at registration, like histogram bounds.
// Returns nil on a nil registry. Registering the same name as both a
// windowed counter and a windowed histogram is a programming error; the
// first registration wins and the mismatched accessor returns nil.
func (r *Registry) WindowedCounter(name string, slot time.Duration, slots int) *WindowedCounter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.windows[name]
	if !ok {
		w = windowed{c: newWindowedCounter(slot, slots, &r.clk)}
		r.windows[name] = w
	}
	return w.c
}

// WindowedHistogram returns the named windowed histogram, registering
// it on first use with the given bucket boundaries and ring geometry
// (non-positive sizing selects the defaults). Later calls return the
// existing instrument regardless of the arguments. Returns nil on a nil
// registry, and nil when the name is already a windowed counter.
func (r *Registry) WindowedHistogram(name string, bounds []float64, slot time.Duration, slots int) *WindowedHistogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.windows[name]
	if !ok {
		w = windowed{h: newWindowedHistogram(bounds, slot, slots, &r.clk)}
		r.windows[name] = w
	}
	return w.h
}

// Ring returns the named trace ring, registering it with the given
// capacity on first use (non-positive capacity selects the 1024-entry
// default). Later calls return the existing ring regardless of the
// capacity argument. Returns nil on a nil registry.
func (r *Registry) Ring(name string, capacity int) *Ring {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rg, ok := r.rings[name]
	if !ok {
		rg = newRing(capacity)
		r.rings[name] = rg
	}
	return rg
}

// Spans returns the named span buffer, registering it with the given
// capacity on first use (non-positive capacity selects the 8192-record
// default). Later calls return the existing buffer regardless of the
// capacity argument. Returns nil on a nil registry.
func (r *Registry) Spans(name string, capacity int) *SpanBuffer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.spans[name]
	if !ok {
		b = newSpanBuffer(capacity)
		r.spans[name] = b
	}
	return b
}

// CounterSnap is the point-in-time value of one counter inside a
// Snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Snapshot is a structured, JSON-serializable view of every registered
// instrument, sorted by name within each section. Its structure — the
// set of names, histogram bucket boundaries, and field layout — is
// deterministic for a given instrumented workload; only the observed
// values vary run to run. OBSERVABILITY.md documents every name the repo
// emits, and TestSnapshotMatchesObservabilityContract holds the two in
// sync.
type Snapshot struct {
	Schema     int             `json:"schema"`
	Counters   []CounterSnap   `json:"counters"`
	Gauges     []GaugeSnap     `json:"gauges"`
	Histograms []HistogramSnap `json:"histograms"`
	Windows    []WindowSnap    `json:"windows"`
	Traces     []TraceSnap     `json:"traces"`
	Spans      []SpanSnap      `json:"spans"`
}

// Window returns the named windowed instrument's snapshot section, or a
// zero WindowSnap (Slots == 0) when absent — the lookup the SLO
// evaluator and gtop run per objective.
func (s Snapshot) Window(name string) WindowSnap {
	for _, w := range s.Windows {
		if w.Name == name {
			return w
		}
	}
	return WindowSnap{}
}

// Snapshot captures the current state of every instrument. Counters and
// histogram buckets are read atomically per value; a snapshot taken
// while events are in flight is internally consistent per instrument but
// not across instruments (a submit may be counted whose latency is not
// yet observed). On a nil registry it returns an empty snapshot with the
// current schema.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Schema:     SnapshotSchema,
		Counters:   []CounterSnap{},
		Gauges:     []GaugeSnap{},
		Histograms: []HistogramSnap{},
		Windows:    []WindowSnap{},
		Traces:     []TraceSnap{},
		Spans:      []SpanSnap{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	windows := make(map[string]windowed, len(r.windows))
	for k, v := range r.windows {
		windows[k] = v
	}
	rings := make(map[string]*Ring, len(r.rings))
	for k, v := range r.rings {
		rings[k] = v
	}
	spans := make(map[string]*SpanBuffer, len(r.spans))
	for k, v := range r.spans {
		spans[k] = v
	}
	r.mu.Unlock()

	for name, c := range counters {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: c.Value()})
	}
	for name, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Value: g.Value()})
	}
	for name, h := range hists {
		s.Histograms = append(s.Histograms, h.snapshot(name))
	}
	for name, w := range windows {
		if w.c != nil {
			s.Windows = append(s.Windows, w.c.snapshot(name))
		} else if w.h != nil {
			s.Windows = append(s.Windows, w.h.snapshot(name))
		}
	}
	for name, rg := range rings {
		s.Traces = append(s.Traces, rg.snapshot(name))
	}
	for name, b := range spans {
		s.Spans = append(s.Spans, b.snapshot(name))
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	sort.Slice(s.Windows, func(i, j int) bool { return s.Windows[i].Name < s.Windows[j].Name })
	sort.Slice(s.Traces, func(i, j int) bool { return s.Traces[i].Name < s.Traces[j].Name })
	sort.Slice(s.Spans, func(i, j int) bool { return s.Spans[i].Name < s.Spans[j].Name })
	return s
}

// WriteText renders the snapshot as a human-readable report: counters as
// a name/value table, histograms with count, mean, min/max, and
// estimated p50/p95/p99 (the distribution view the paper's evaluation is
// built on — averages hide the commit-point and latency tails), a
// one-line summary per span buffer, and the tail of each trace ring.
func (s Snapshot) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "# obs snapshot (schema %d)\n", s.Schema)
	if len(s.Counters) > 0 {
		fmt.Fprintf(tw, "\ncounter\tvalue\n")
		for _, c := range s.Counters {
			fmt.Fprintf(tw, "%s\t%d\n", c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintf(tw, "\ngauge\tvalue\n")
		for _, g := range s.Gauges {
			fmt.Fprintf(tw, "%s\t%.4g\n", g.Name, g.Value)
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintf(tw, "\nhistogram\tcount\tmean\tmin\tmax\tp50\tp95\tp99\n")
		for _, h := range s.Histograms {
			fmt.Fprintf(tw, "%s\t%d\t%.4g\t%.4g\t%.4g\t%.4g\t%.4g\t%.4g\n",
				h.Name, h.Count, h.Mean(), h.Min, h.Max,
				h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
		}
	}
	if len(s.Windows) > 0 {
		fmt.Fprintf(tw, "\nwindow\tslot\tlive\tcount(1m)\trate(1m)/s\n")
		for _, win := range s.Windows {
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.4g\n",
				win.Name, time.Duration(win.SlotNS), len(win.Live),
				win.Total(time.Minute), win.Rate(time.Minute))
		}
	}
	for _, sp := range s.Spans {
		fmt.Fprintf(tw, "\nspans %s\t(%d recorded, cap %d; export with WriteChromeTrace / /debug/trace)\n",
			sp.Name, sp.Recorded, sp.Cap)
	}
	for _, t := range s.Traces {
		fmt.Fprintf(tw, "\ntrace %s\t(%d emitted, cap %d)\n", t.Name, t.Emitted, t.Cap)
		events := t.Events
		const tail = 16
		if len(events) > tail {
			fmt.Fprintf(tw, "...\t%d older events elided\n", len(events)-tail)
			events = events[len(events)-tail:]
		}
		for _, e := range events {
			fmt.Fprintf(tw, "%d\t%s\t%s\t%s\n",
				e.Seq, time.Unix(0, e.At).UTC().Format("15:04:05.000"), e.Name, e.Detail)
		}
	}
	return tw.Flush()
}

// Report renders the registry's current snapshot as the human-readable
// WriteText report and returns it as a string — the quick way to dump
// state from tests or a debugger. Works on a nil registry (reports the
// empty snapshot).
func (r *Registry) Report() string {
	var b strings.Builder
	// WriteText cannot fail on a strings.Builder (its Write never errors).
	_ = r.Snapshot().WriteText(&b)
	return b.String()
}

// Handler returns an http.Handler serving the registry's Snapshot as an
// indented JSON document — the expvar-style dump cmd/gserve mounts at
// /metrics. Safe to call with a nil registry (serves the empty
// snapshot).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// Encoding errors here mean the client went away; nothing to do.
		_ = enc.Encode(r.Snapshot())
	})
}

// TextHandler returns an http.Handler serving the human-readable report
// of WriteText — cmd/gserve mounts it at /metrics.txt. Safe with a nil
// registry.
func TextHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = r.Snapshot().WriteText(w)
	})
}
