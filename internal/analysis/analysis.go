// Package analysis evaluates the *design* of a gesture set — the concern
// section 5 opens with: "How well the eager recognition algorithm works
// depends on a number of factors, the most critical being the gesture set
// itself. It is very easy to design a gesture set that does not lend
// itself well to eager recognition."
//
// Given training examples, the analyzer reports:
//
//   - pairwise class separation under the trained classifier's Mahalanobis
//     metric (confusable pairs);
//   - prefix ambiguity: for each class, how far into its gestures the
//     recognizer stays ambiguous, and with which classes (figure 8's
//     note-gesture pathology, detected automatically);
//   - per-class expected eagerness, with warnings for classes that can
//     essentially never be eagerly recognized.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/eager"
	"repro/internal/gesture"
)

// PairSeparation is the Mahalanobis distance between two class means.
type PairSeparation struct {
	A, B     string
	Distance float64
}

// ClassEagerness summarizes one class's amenability to eager recognition.
type ClassEagerness struct {
	Class string
	// MeanFiredFrac is the mean fraction of points seen before firing on
	// held-out examples (1.0 = never early).
	MeanFiredFrac float64
	// ConfusedWith lists the classes this class's prefixes are mistaken
	// for, most frequent first.
	ConfusedWith []string
}

// Report is the analyzer's output.
type Report struct {
	Classes []string
	// Separations, closest pair first.
	Separations []PairSeparation
	// Eagerness per class, least eager first.
	Eagerness []ClassEagerness
	// Warnings are human-readable design findings.
	Warnings []string
}

// Options tunes the analysis.
type Options struct {
	// Eager configures recognizer training.
	Eager eager.Options
	// CloseThreshold flags class pairs whose mean separation falls below
	// it (default 5 — well-separated sets sit far above).
	CloseThreshold float64
	// NeverEagerFrac flags classes whose mean fired fraction exceeds it
	// (default 0.9).
	NeverEagerFrac float64
	// HoldoutFrac is the fraction of examples per class held out for the
	// eagerness measurement (default 0.3).
	HoldoutFrac float64
}

// DefaultOptions returns the standard thresholds.
func DefaultOptions() Options {
	return Options{
		Eager:          eager.DefaultOptions(),
		CloseThreshold: 5,
		NeverEagerFrac: 0.9,
		HoldoutFrac:    0.3,
	}
}

// Analyze trains on part of the set, measures on the rest, and reports.
func Analyze(set *gesture.Set, opts Options) (*Report, error) {
	if opts.CloseThreshold <= 0 {
		opts.CloseThreshold = 5
	}
	if opts.NeverEagerFrac <= 0 {
		opts.NeverEagerFrac = 0.9
	}
	if opts.HoldoutFrac <= 0 || opts.HoldoutFrac >= 1 {
		opts.HoldoutFrac = 0.3
	}

	train, holdout := split(set, opts.HoldoutFrac)
	rec, _, err := eager.Train(train, opts.Eager)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}

	rep := &Report{Classes: rec.Full.Classes()}

	// Pairwise separations.
	nc := rec.Full.C.NumClasses()
	for i := 0; i < nc; i++ {
		for j := i + 1; j < nc; j++ {
			rep.Separations = append(rep.Separations, PairSeparation{
				A: rec.Full.C.Classes[i], B: rec.Full.C.Classes[j],
				Distance: rec.Full.C.MeanDistance(i, j),
			})
		}
	}
	sort.Slice(rep.Separations, func(a, b int) bool {
		return rep.Separations[a].Distance < rep.Separations[b].Distance
	})

	// Eagerness and prefix confusion on held-out examples.
	type agg struct {
		fracSum float64
		n       int
		conf    map[string]int
	}
	byClass := map[string]*agg{}
	for _, e := range holdout.Examples {
		a := byClass[e.Class]
		if a == nil {
			a = &agg{conf: map[string]int{}}
			byClass[e.Class] = a
		}
		_, firedAt, err := rec.Run(e.Gesture)
		if err != nil {
			return nil, fmt.Errorf("analysis: holdout example (%s): %w", e.Class, err)
		}
		a.fracSum += float64(firedAt) / float64(e.Gesture.Len())
		a.n++
		// Which classes do this gesture's early prefixes look like?
		for i := opts.Eager.MinSubgesture; i <= e.Gesture.Len(); i += 3 {
			pred, err := rec.Full.Classify(e.Gesture.Sub(i))
			if err != nil {
				return nil, fmt.Errorf("analysis: holdout prefix (%s): %w", e.Class, err)
			}
			if pred != e.Class {
				a.conf[pred]++
			}
		}
	}
	for class, a := range byClass {
		ce := ClassEagerness{Class: class, MeanFiredFrac: a.fracSum / float64(a.n)}
		type kv struct {
			k string
			v int
		}
		var kvs []kv
		for k, v := range a.conf {
			kvs = append(kvs, kv{k, v})
		}
		sort.Slice(kvs, func(i, j int) bool {
			if kvs[i].v != kvs[j].v {
				return kvs[i].v > kvs[j].v
			}
			return kvs[i].k < kvs[j].k
		})
		for _, x := range kvs {
			ce.ConfusedWith = append(ce.ConfusedWith, x.k)
		}
		rep.Eagerness = append(rep.Eagerness, ce)
	}
	sort.Slice(rep.Eagerness, func(i, j int) bool {
		//lint:ignore floateq exact tie-break for a deterministic sort order, not a numeric tolerance test
		if rep.Eagerness[i].MeanFiredFrac != rep.Eagerness[j].MeanFiredFrac {
			return rep.Eagerness[i].MeanFiredFrac > rep.Eagerness[j].MeanFiredFrac
		}
		return rep.Eagerness[i].Class < rep.Eagerness[j].Class
	})

	// Warnings.
	for _, s := range rep.Separations {
		if s.Distance < opts.CloseThreshold {
			rep.Warnings = append(rep.Warnings,
				fmt.Sprintf("classes %q and %q are close (Mahalanobis %.1f): expect confusion", s.A, s.B, s.Distance))
		}
	}
	for _, ce := range rep.Eagerness {
		if ce.MeanFiredFrac >= opts.NeverEagerFrac {
			w := fmt.Sprintf("class %q is essentially never eagerly recognized (%.0f%% of points needed)",
				ce.Class, 100*ce.MeanFiredFrac)
			if len(ce.ConfusedWith) > 0 {
				w += fmt.Sprintf("; its prefixes look like %s", strings.Join(ce.ConfusedWith, ", "))
			}
			rep.Warnings = append(rep.Warnings, w)
		}
	}
	return rep, nil
}

// split deals every k-th example per class into the holdout.
func split(set *gesture.Set, holdoutFrac float64) (train, holdout *gesture.Set) {
	train = &gesture.Set{Name: set.Name + "-train"}
	holdout = &gesture.Set{Name: set.Name + "-holdout"}
	every := int(1 / holdoutFrac)
	if every < 2 {
		every = 2
	}
	counters := map[string]int{}
	for _, e := range set.Examples {
		counters[e.Class]++
		if counters[e.Class]%every == 0 {
			holdout.Add(e.Class, e.Gesture)
		} else {
			train.Add(e.Class, e.Gesture)
		}
	}
	return train, holdout
}

// Format renders the report.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== gesture set analysis: %d classes ==\n", len(r.Classes))
	fmt.Fprintf(&b, "closest class pairs (Mahalanobis between means):\n")
	for i, s := range r.Separations {
		if i >= 5 {
			break
		}
		fmt.Fprintf(&b, "  %-14s %-14s %8.1f\n", s.A, s.B, s.Distance)
	}
	fmt.Fprintf(&b, "eagerness (fraction of points needed before firing):\n")
	for _, ce := range r.Eagerness {
		conf := ""
		if len(ce.ConfusedWith) > 0 {
			max := len(ce.ConfusedWith)
			if max > 3 {
				max = 3
			}
			conf = " (prefixes look like " + strings.Join(ce.ConfusedWith[:max], ", ") + ")"
		}
		fmt.Fprintf(&b, "  %-14s %5.1f%%%s\n", ce.Class, 100*ce.MeanFiredFrac, conf)
	}
	if len(r.Warnings) == 0 {
		fmt.Fprintf(&b, "no design warnings\n")
	} else {
		fmt.Fprintf(&b, "warnings:\n")
		for _, w := range r.Warnings {
			fmt.Fprintf(&b, "  ! %s\n", w)
		}
	}
	return b.String()
}
