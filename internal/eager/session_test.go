package eager

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/synth"
)

// TestEndAfterNonFinitePoint: a NaN point poisons the stroke; End must
// report the error (never a class computed from NaN features) and leave
// the session undecided. Regression for the "Reset-by-replacement" doc
// referencing a Reset that did not exist: recovery is now a real method.
func TestEndAfterNonFinitePoint(t *testing.T) {
	trainSet, _, _ := genSets(synth.UDClasses(), 8, 1, 221)
	r, _ := mustTrain(t, trainSet, DefaultOptions())
	s, err := r.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	good := trainSet.Examples[0].Gesture.Points
	for i := 0; i < 3; i++ {
		if _, _, err := s.Add(good[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.Add(geom.TimedPoint{X: math.NaN(), Y: 0, T: good[2].T + 0.01}); err == nil {
		t.Fatal("Add accepted a NaN point at judging length")
	}
	// Still poisoned: further valid points cannot heal the features.
	if _, _, err := s.Add(geom.TimedPoint{X: 500, Y: 500, T: good[2].T + 0.02}); err == nil {
		t.Fatal("Add recovered without Reset")
	}
	if _, err := s.End(); err == nil {
		t.Fatal("End classified a poisoned stroke")
	}
	if s.Decided() || s.Class() != "" {
		t.Fatal("poisoned session decided anyway")
	}
}

// TestSessionReset: after Reset the same session must collect and
// classify a fresh gesture exactly like a brand-new session, including
// after poisoning.
func TestSessionReset(t *testing.T) {
	trainSet, testSet, _ := genSets(synth.UDClasses(), 10, 4, 231)
	r, _ := mustTrain(t, trainSet, DefaultOptions())
	s, err := r.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	// Poison, then Reset, then replay every test gesture through the same
	// session; outcomes must match fresh-session Run.
	s.Add(geom.TimedPoint{X: math.Inf(1), Y: 0, T: 0})
	for _, e := range testSet.Examples {
		s.Reset()
		if s.PointCount() != 0 || s.Decided() || s.Class() != "" {
			t.Fatal("Reset left residual state")
		}
		var fired bool
		var firedAt int
		var class string
		for i, p := range e.Gesture.Points {
			f, c, err := s.Add(p)
			if err != nil {
				t.Fatal(err)
			}
			if f && !fired {
				fired, firedAt, class = true, i+1, c
			}
		}
		if !fired {
			var err error
			class, err = s.End()
			if err != nil {
				t.Fatal(err)
			}
			firedAt = e.Gesture.Len()
		}
		wantClass, wantAt, err := r.Run(e.Gesture)
		if err != nil {
			t.Fatal(err)
		}
		if class != wantClass || firedAt != wantAt {
			t.Fatalf("pooled session (%s,%d) disagrees with fresh Run (%s,%d)",
				class, firedAt, wantClass, wantAt)
		}
	}
}
