package main

import (
	"flag"
	"fmt"
	"io"

	"repro/internal/eager"
	"repro/internal/gesture"
	"repro/internal/recognizer"
)

// run executes grecog with the given arguments. Extracted from main for
// tests.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("grecog", flag.ContinueOnError)
	fs.SetOutput(stderr)
	recPath := fs.String("rec", "", "trained recognizer JSON (required)")
	in := fs.String("in", "", "gesture set JSON to classify (required)")
	eagerFlag := fs.Bool("eager", false, "recognizer is an eager recognizer")
	verbose := fs.Bool("v", false, "print one line per gesture")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *recPath == "" || *in == "" {
		fmt.Fprintln(stderr, "grecog: -rec and -in are required")
		fs.Usage()
		return 2
	}
	set, err := gesture.LoadFile(*in)
	if err != nil {
		fmt.Fprintf(stderr, "grecog: %v\n", err)
		return 1
	}

	var classify func(g gesture.Gesture) (string, int, error)
	if *eagerFlag {
		rec, err := eager.LoadFile(*recPath)
		if err != nil {
			fmt.Fprintf(stderr, "grecog: %v\n", err)
			return 1
		}
		classify = rec.Run
	} else {
		rec, err := recognizer.LoadFile(*recPath)
		if err != nil {
			fmt.Fprintf(stderr, "grecog: %v\n", err)
			return 1
		}
		classify = func(g gesture.Gesture) (string, int, error) {
			class, err := rec.Classify(g)
			return class, g.Len(), err
		}
	}

	correct, seen, total := 0, 0, 0
	for i, e := range set.Examples {
		class, firedAt, err := classify(e.Gesture)
		if err != nil {
			fmt.Fprintf(stderr, "grecog: example %d: %v\n", i, err)
			return 1
		}
		ok := class == e.Class
		if ok {
			correct++
		}
		seen += firedAt
		total += e.Gesture.Len()
		if *verbose {
			mark := " "
			if !ok {
				mark = "E"
			}
			fmt.Fprintf(stdout, "%4d %-14s -> %-14s %s %d/%d points\n", i, e.Class, class, mark, firedAt, e.Gesture.Len())
		}
	}
	fmt.Fprintf(stdout, "accuracy: %d/%d = %.1f%%\n", correct, set.Len(), 100*float64(correct)/float64(set.Len()))
	if *eagerFlag {
		fmt.Fprintf(stdout, "points examined: %.1f%%\n", 100*float64(seen)/float64(total))
	}
	return 0
}
