// Package linttest runs a lint.Analyzer over a testdata package and
// checks its diagnostics against expectations embedded in the source, the
// way golang.org/x/tools/go/analysis/analysistest does:
//
//	bad := compute() == 1.0 // want `float operands`
//
// A `// want` comment declares that the analyzer must report a diagnostic
// on that line whose message matches the backquoted regular expression.
// Lines without a want comment must produce no diagnostic. //lint:ignore
// directives are honoured exactly as in the glint driver, so fixtures can
// test the allowlist mechanism itself.
package linttest

import (
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
)

// wantRe extracts the backquoted pattern from a // want comment.
var wantRe = regexp.MustCompile("// want `([^`]*)`")

// Run loads the package in dir under the given import path, applies the
// analyzer, and reports any mismatch between produced diagnostics and the
// // want expectations as test errors.
func Run(t *testing.T, a *lint.Analyzer, dir, importPath string) {
	t.Helper()
	pkg, err := lint.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := lint.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type expectation struct {
		pattern *regexp.Regexp
		line    int
		file    string
		matched bool
	}
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ms := wantRe.FindAllStringSubmatch(c.Text, -1)
				if ms == nil {
					if strings.Contains(c.Text, "// want") {
						t.Errorf("%s: malformed want comment %q (pattern must be backquoted)",
							pkg.Fset.Position(c.Pos()), c.Text)
					}
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
					}
					wants = append(wants, &expectation{pattern: re, line: pos.Line, file: pos.Filename})
				}
			}
		}
	}

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}
