package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestAnalyzeBuiltinSet(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-set", "notes", "-n", "12"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "warnings:") || !strings.Contains(out, "never eagerly") {
		t.Errorf("note-set analysis missing warnings:\n%s", out)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no input: exit %d", code)
	}
	if code := run([]string{"-set", "bogus"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown set: exit %d", code)
	}
	if code := run([]string{"-in", "/no/such.json"}, &stdout, &stderr); code != 1 {
		t.Errorf("missing file: exit %d", code)
	}
}
