package wire

// SentLatency computes the end-to-end latency attributed to a frame's
// client-send stamp, clamped against clock skew. nowNS is the
// observation time, sentNS the frame stamp, and startNS the observing
// process's start time (all Unix nanoseconds). It returns false when
// the frame is unstamped (sentNS <= 0) — no observation should be
// recorded. Otherwise the delta is clamped into [0, nowNS-startNS]:
// a client clock ahead of the server yields 0, and a stamp older than
// the process start (a stale or bogus clock) caps at process uptime,
// so a `wire.e2e*` observation is never negative and never exceeds the
// server's own lifetime.
func SentLatency(nowNS, sentNS, startNS int64) (int64, bool) {
	if sentNS <= 0 {
		return 0, false
	}
	d := nowNS - sentNS
	if d < 0 {
		d = 0
	}
	if up := nowNS - startNS; d > up {
		d = up
		if d < 0 {
			d = 0
		}
	}
	return d, true
}
