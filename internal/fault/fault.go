// Package fault is the deterministic fault-injection subsystem behind
// the serving engine's chaos tests (and the obsdemo's scripted failure
// segment). It decides — reproducibly, from a seed — which events of
// which sessions get corrupted, dropped, duplicated, reordered,
// stalled, poisoned, or panicked, so the hardening in internal/serve
// (Submit validation, idle reaper, panic isolation, degraded mode) can
// be exercised under -race against exact invariants.
//
// Two injection points, two hook types:
//
//   - Producer side: a test harness consults Schedule.Fate once per
//     event it is about to submit and applies the returned Kind itself
//     (skip the submit for KindDrop, submit twice for KindDup, set a
//     coordinate to NaN for KindNaN, ...). Fate's decision is a pure
//     function of (seed, session, index), so two runs with the same
//     seed inject exactly the same faults regardless of goroutine
//     scheduling.
//
//   - Engine side: serve.Options.Fault accepts anything implementing
//     the engine's Injector hook (both Schedule and Script do); the
//     engine consults it once per dispatched event, inside the shard
//     goroutine, where it can corrupt coordinates after Submit-time
//     validation (simulating internal corruption) or force a panic
//     (exercising per-shard panic isolation).
//
// Every applied injection counts into the fault.injected.* counters
// (see OBSERVABILITY.md) when Instrument attached a registry, so a
// chaos run can check that each scheduled fault is visible end to end.
// All hooks are nil-safe no-ops: a nil *Schedule (or *Script, or a nil
// serve.Options.Fault) costs a nil check and nothing else, holding the
// sub-5ns disabled-path contract (benchmark-enforced, like
// internal/obs).
package fault

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/obs"
)

// Kind enumerates the injectable faults.
type Kind int

// Fault kinds. The first group is producer-side (applied by the
// harness before Submit), the second engine-side (applied by the
// engine's dispatch hook, after Submit-time validation).
const (
	// KindNone is the no-fault decision.
	KindNone Kind = iota
	// KindDrop deletes the event (never submitted).
	KindDrop
	// KindDup submits the event twice.
	KindDup
	// KindNaN sets a coordinate to NaN (Submit must reject it).
	KindNaN
	// KindInf sets a coordinate to +Inf (Submit must reject it).
	KindInf
	// KindNegT sets the timestamp negative (Submit must reject it).
	KindNegT
	// KindReorder swaps the event with its successor in submission order.
	KindReorder
	// KindStall abandons the session mid-stroke: this event and every
	// later one (including the FingerUp) are never submitted, leaving
	// the session idle until the engine's deadline reaper finishes it.
	KindStall
	// KindPanic makes the engine's dispatch hook panic, exercising
	// per-shard panic isolation.
	KindPanic
	// KindPoison corrupts the event's coordinates to NaN inside the
	// engine — past Submit validation — poisoning the eager extractor
	// and exercising the degraded-classification fallback.
	KindPoison

	kindCount
)

// producerKinds are the kinds Fate can return, in rate-table order.
var producerKinds = []Kind{KindDrop, KindDup, KindNaN, KindInf, KindNegT, KindReorder, KindStall}

// engineKinds are the kinds Dispatch can apply, in rate-table order.
var engineKinds = []Kind{KindPanic, KindPoison}

// String names the kind as it appears in the fault.injected.* metric
// suffix ("drop", "dup", "nan", "inf", "neg_t", "reorder", "stall",
// "panic", "poison"; KindNone is "none").
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindDrop:
		return "drop"
	case KindDup:
		return "dup"
	case KindNaN:
		return "nan"
	case KindInf:
		return "inf"
	case KindNegT:
		return "neg_t"
	case KindReorder:
		return "reorder"
	case KindStall:
		return "stall"
	case KindPanic:
		return "panic"
	case KindPoison:
		return "poison"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Plan declares a seeded fault mix: the per-event probability of each
// kind. Producer kinds and engine kinds are drawn independently (an
// event can be both reordered by the producer and poisoned by the
// engine); within each group the rates must sum to at most 1.
type Plan struct {
	// Seed selects the deterministic decision stream. Two Schedules
	// built from equal Plans make identical decisions.
	Seed int64
	// Rates maps each Kind to its per-event injection probability in
	// [0, 1]. Absent kinds have rate 0.
	Rates map[Kind]float64
}

// injectMetrics is the shared per-kind counter set. The zero value
// (all nil) is the uninstrumented state: every note is a nil-safe
// no-op.
type injectMetrics struct {
	byKind [kindCount]*obs.Counter // fault.injected.<kind>
	total  *obs.Counter            // fault.injected.total
}

func (im *injectMetrics) instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for _, k := range producerKinds {
		im.byKind[k] = reg.Counter("fault.injected." + k.String())
	}
	for _, k := range engineKinds {
		im.byKind[k] = reg.Counter("fault.injected." + k.String())
	}
	im.total = reg.Counter("fault.injected.total")
}

func (im *injectMetrics) note(k Kind) {
	if k <= KindNone || k >= kindCount {
		return
	}
	im.byKind[k].Inc()
	im.total.Inc()
}

// Schedule makes deterministic, order-independent fault decisions: the
// fate of event index i of session s depends only on (seed, s, i), via
// FNV-1a, never on call order or timing. Safe for concurrent use (the
// decision is a pure function; the counters are atomic), and nil-safe:
// a nil *Schedule never injects.
type Schedule struct {
	seed    int64
	prodCum []float64 // cumulative rates aligned with producerKinds
	dispCum []float64 // cumulative rates aligned with engineKinds
	m       injectMetrics
}

// NewSchedule validates a Plan and builds its Schedule. Rates outside
// [0, 1], unknown kinds, or a group summing past 1 are errors.
func NewSchedule(p Plan) (*Schedule, error) {
	known := map[Kind]bool{}
	for _, k := range producerKinds {
		known[k] = true
	}
	for _, k := range engineKinds {
		known[k] = true
	}
	kinds := make([]Kind, 0, len(p.Rates))
	for k := range p.Rates {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		r := p.Rates[k]
		if !known[k] {
			return nil, fmt.Errorf("fault: rate for unknown kind %v", k)
		}
		if math.IsNaN(r) || r < 0 || r > 1 {
			return nil, fmt.Errorf("fault: rate for %v must be in [0, 1], got %v", k, r)
		}
	}
	s := &Schedule{seed: p.Seed}
	cum := 0.0
	for _, k := range producerKinds {
		cum += p.Rates[k]
		s.prodCum = append(s.prodCum, cum)
	}
	if cum > 1 {
		return nil, fmt.Errorf("fault: producer-side rates sum to %v > 1", cum)
	}
	cum = 0
	for _, k := range engineKinds {
		cum += p.Rates[k]
		s.dispCum = append(s.dispCum, cum)
	}
	if cum > 1 {
		return nil, fmt.Errorf("fault: engine-side rates sum to %v > 1", cum)
	}
	return s, nil
}

// Instrument attaches the fault.injected.* counters (one per kind plus
// a total; see OBSERVABILITY.md) to the registry. Call before serving;
// a nil registry (or receiver) is a no-op.
func (s *Schedule) Instrument(reg *obs.Registry) {
	if s == nil {
		return
	}
	s.m.instrument(reg)
}

// roll returns a uniform [0, 1) draw for one (domain, session, index)
// triple, the deterministic coin behind every decision. Separate
// domains keep the producer and engine decision streams independent.
func (s *Schedule) roll(domain byte, session string, index int) float64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(s.seed))
	h.Write(buf[:])
	h.Write([]byte{domain})
	h.Write([]byte(session))
	binary.LittleEndian.PutUint64(buf[:], uint64(index))
	h.Write(buf[:])
	// Top 53 bits -> [0, 1) with full double precision.
	return float64(h.Sum64()>>11) / (1 << 53)
}

// Fate decides the producer-side fault, if any, for event index of the
// session. The caller owns applying it (and therefore every returned
// non-None kind is counted as injected). Nil-safe: returns KindNone.
func (s *Schedule) Fate(session string, index int) Kind {
	if s == nil || len(s.prodCum) == 0 || s.prodCum[len(s.prodCum)-1] == 0 {
		return KindNone
	}
	u := s.roll('p', session, index)
	for i, c := range s.prodCum {
		if u < c {
			k := producerKinds[i]
			s.m.note(k)
			return k
		}
	}
	return KindNone
}

// Dispatch is the engine-side hook (serve.Options.Fault): consulted
// once per dispatched event with the session, the session's 0-based
// dispatch index, and the event coordinates. It returns possibly
// corrupted coordinates plus panicNow, which asks the engine to panic
// in place of dispatching. Nil-safe: passes coordinates through.
func (s *Schedule) Dispatch(session string, index int, x, y float64) (fx, fy float64, panicNow bool) {
	if s == nil || len(s.dispCum) == 0 || s.dispCum[len(s.dispCum)-1] == 0 {
		return x, y, false
	}
	u := s.roll('e', session, index)
	for i, c := range s.dispCum {
		if u < c {
			k := engineKinds[i]
			s.m.note(k)
			switch k {
			case KindPanic:
				return x, y, true
			case KindPoison:
				return math.NaN(), math.NaN(), false
			}
		}
	}
	return x, y, false
}

// Script is the targeted counterpart of Schedule: explicit
// (session, dispatch index) -> Kind rules for the engine-side hook,
// used where a workload needs exactly one fault in exactly one place
// (the obsdemo's deterministic failure segment). Configure with Set
// before serving; Dispatch is then read-only and safe for concurrent
// use. Nil-safe like Schedule.
type Script struct {
	rules map[string]map[int]Kind
	m     injectMetrics
}

// NewScript returns an empty script (injects nothing until Set).
func NewScript() *Script {
	return &Script{rules: map[string]map[int]Kind{}}
}

// Set schedules kind at the session's 0-based dispatch index and
// returns the script for chaining. Only engine-side kinds (KindPanic,
// KindPoison) have any effect. Not safe concurrently with Dispatch —
// finish scripting before serving.
func (sc *Script) Set(session string, index int, k Kind) *Script {
	byIdx := sc.rules[session]
	if byIdx == nil {
		byIdx = map[int]Kind{}
		sc.rules[session] = byIdx
	}
	byIdx[index] = k
	return sc
}

// Instrument attaches the fault.injected.* counters to the registry,
// exactly as Schedule.Instrument does. Nil-safe.
func (sc *Script) Instrument(reg *obs.Registry) {
	if sc == nil {
		return
	}
	sc.m.instrument(reg)
}

// Dispatch implements the engine-side hook for scripted faults; see
// Schedule.Dispatch for the signature contract.
func (sc *Script) Dispatch(session string, index int, x, y float64) (fx, fy float64, panicNow bool) {
	if sc == nil {
		return x, y, false
	}
	switch sc.rules[session][index] {
	case KindPanic:
		sc.m.note(KindPanic)
		return x, y, true
	case KindPoison:
		sc.m.note(KindPoison)
		return math.NaN(), math.NaN(), false
	}
	return x, y, false
}
