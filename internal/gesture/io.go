package gesture

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteJSON serializes the set as indented JSON to w.
func (s *Set) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("gesture: encoding set %q: %w", s.Name, err)
	}
	return nil
}

// ReadJSON parses a set from r.
func ReadJSON(r io.Reader) (*Set, error) {
	var s Set
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("gesture: decoding set: %w", err)
	}
	return &s, nil
}

// SaveFile writes the set to the named file as JSON.
func (s *Set) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("gesture: %w", err)
	}
	defer f.Close()
	if err := s.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a set from the named JSON file.
func LoadFile(path string) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("gesture: %w", err)
	}
	defer f.Close()
	return ReadJSON(f)
}
