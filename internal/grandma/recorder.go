package grandma

import (
	"repro/internal/display"
	"repro/internal/geom"
	"repro/internal/gesture"
)

// Recorder is an event handler that captures raw strokes as labelled
// gesture examples. It is the collection half of GRANDMA's train-by-example
// story: put the interface in record mode (attach a Recorder ahead of the
// gesture handler), draw examples of a class, retrain, resume. Strokes are
// inked like gestures and appended to Set under the current Class label.
type Recorder struct {
	Button    display.Button
	Predicate func(ev display.Event, v *View) bool
	// Class labels subsequently recorded strokes. Empty disables the
	// recorder (events propagate to the next handler).
	Class string
	// Set receives the recorded examples. Must be non-nil to record.
	Set *gesture.Set
	// OnStroke, if set, observes each completed stroke.
	OnStroke func(class string, g gesture.Gesture)
}

// Wants implements EventHandler.
func (r *Recorder) Wants(ev display.Event, v *View) bool {
	if ev.Kind != display.MouseDown || ev.Button != r.Button {
		return false
	}
	if r.Class == "" || r.Set == nil {
		return false
	}
	if r.Predicate != nil && !r.Predicate(ev, v) {
		return false
	}
	return true
}

// Begin implements EventHandler.
func (r *Recorder) Begin(ev display.Event, v *View, s *Session) Interaction {
	ri := &recordInteraction{r: r}
	ri.points = geom.Path{{X: ev.X, Y: ev.Y, T: ev.Time}}
	s.SetInk(ri.points)
	return ri
}

type recordInteraction struct {
	r      *Recorder
	points geom.Path
}

func (ri *recordInteraction) Handle(ev display.Event, s *Session) bool {
	switch ev.Kind {
	case display.MouseMove:
		ri.points = append(ri.points, geom.TimedPoint{X: ev.X, Y: ev.Y, T: ev.Time})
		s.SetInk(ri.points)
		return false
	case display.MouseUp:
		g := gesture.New(ri.points.Clone())
		ri.r.Set.Add(ri.r.Class, g)
		if ri.r.OnStroke != nil {
			ri.r.OnStroke(ri.r.Class, g)
		}
		s.ClearInk()
		return true
	default:
		return false
	}
}
