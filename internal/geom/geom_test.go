package geom

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func TestPointArithmetic(t *testing.T) {
	a, b := Pt(1, 2), Pt(3, -4)
	if got := a.Add(b); got != Pt(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != Pt(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Cross(b); got != -4-6 {
		t.Errorf("Cross = %v", got)
	}
}

func TestPointNormDist(t *testing.T) {
	if got := Pt(3, 4).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := Pt(0, 0).Dist(Pt(3, 4)); got != 5 {
		t.Errorf("Dist = %v", got)
	}
	if got := Pt(0, 0).DistSq(Pt(3, 4)); got != 25 {
		t.Errorf("DistSq = %v", got)
	}
}

func TestPointAngle(t *testing.T) {
	cases := []struct {
		p    Point
		want float64
	}{
		{Pt(1, 0), 0},
		{Pt(0, 1), math.Pi / 2},
		{Pt(-1, 0), math.Pi},
		{Pt(0, -1), -math.Pi / 2},
		{Pt(0, 0), 0},
	}
	for _, c := range cases {
		if got := c.p.Angle(); !mathx.ApproxEqual(got, c.want, 1e-12) {
			t.Errorf("Angle(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRotate(t *testing.T) {
	got := Pt(1, 0).Rotate(math.Pi / 2)
	if !mathx.ApproxEqual(got.X, 0, 1e-12) || !mathx.ApproxEqual(got.Y, 1, 1e-12) {
		t.Errorf("Rotate = %v", got)
	}
	got = Pt(2, 1).RotateAround(Pt(1, 1), math.Pi)
	if !mathx.ApproxEqual(got.X, 0, 1e-12) || !mathx.ApproxEqual(got.Y, 1, 1e-12) {
		t.Errorf("RotateAround = %v", got)
	}
}

func TestRotatePreservesDistance(t *testing.T) {
	f := func(x, y, cx, cy, angle float64) bool {
		if !mathx.Finite(x) || !mathx.Finite(y) || !mathx.Finite(cx) || !mathx.Finite(cy) || !mathx.Finite(angle) {
			return true
		}
		x, y = math.Mod(x, 1e6), math.Mod(y, 1e6)
		cx, cy = math.Mod(cx, 1e6), math.Mod(cy, 1e6)
		p, c := Pt(x, y), Pt(cx, cy)
		q := p.RotateAround(c, angle)
		return mathx.ApproxEqual(p.Dist(c), q.Dist(c), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	got := Pt(0, 0).Lerp(Pt(10, 20), 0.5)
	if got != Pt(5, 10) {
		t.Errorf("Lerp = %v", got)
	}
}

func TestEmptyRect(t *testing.T) {
	r := EmptyRect()
	if !r.Empty() {
		t.Fatal("EmptyRect not empty")
	}
	if r.Width() != 0 || r.Height() != 0 || r.Diagonal() != 0 {
		t.Error("empty rect has nonzero extent")
	}
	if r.Contains(Pt(0, 0)) {
		t.Error("empty rect contains a point")
	}
	r = r.AddPoint(Pt(1, 2))
	if r.Empty() {
		t.Fatal("rect empty after AddPoint")
	}
	if r.MinX != 1 || r.MaxX != 1 || r.MinY != 2 || r.MaxY != 2 {
		t.Errorf("rect after one AddPoint: %+v", r)
	}
}

func TestRectAccumulate(t *testing.T) {
	r := EmptyRect().AddPoint(Pt(1, 1)).AddPoint(Pt(-2, 5)).AddPoint(Pt(3, 0))
	want := Rect{-2, 0, 3, 5}
	if r != want {
		t.Errorf("accumulated rect %+v, want %+v", r, want)
	}
	if r.Width() != 5 || r.Height() != 5 {
		t.Errorf("width/height = %v/%v", r.Width(), r.Height())
	}
	if !mathx.ApproxEqual(r.Diagonal(), math.Sqrt(50), 1e-12) {
		t.Errorf("diagonal = %v", r.Diagonal())
	}
	if !mathx.ApproxEqual(r.DiagonalAngle(), math.Pi/4, 1e-12) {
		t.Errorf("diagonal angle = %v", r.DiagonalAngle())
	}
}

func TestRectContainment(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	if !r.Contains(Pt(0, 0)) || !r.Contains(Pt(10, 10)) || !r.Contains(Pt(5, 5)) {
		t.Error("boundary/interior points not contained")
	}
	if r.Contains(Pt(-0.1, 5)) || r.Contains(Pt(5, 10.1)) {
		t.Error("outside points contained")
	}
	if !r.ContainsRect(Rect{1, 1, 9, 9}) {
		t.Error("inner rect not contained")
	}
	if r.ContainsRect(Rect{1, 1, 11, 9}) {
		t.Error("overhanging rect contained")
	}
	if !r.ContainsRect(EmptyRect()) {
		t.Error("empty rect should be contained")
	}
	if EmptyRect().ContainsRect(Rect{1, 1, 2, 2}) {
		t.Error("empty rect contains nothing")
	}
}

func TestRectIntersectsUnion(t *testing.T) {
	a := Rect{0, 0, 5, 5}
	b := Rect{4, 4, 9, 9}
	c := Rect{6, 6, 7, 7}
	if !a.Intersects(b) || a.Intersects(c) {
		t.Error("Intersects wrong")
	}
	u := a.Union(b)
	if u != (Rect{0, 0, 9, 9}) {
		t.Errorf("Union = %+v", u)
	}
	if got := a.Union(EmptyRect()); got != a {
		t.Errorf("Union with empty = %+v", got)
	}
	if got := EmptyRect().Union(a); got != a {
		t.Errorf("empty Union a = %+v", got)
	}
	if EmptyRect().Intersects(a) || a.Intersects(EmptyRect()) {
		t.Error("empty rect intersects something")
	}
}

func TestRectInsetTranslateCenter(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	if got := r.Inset(2); got != (Rect{2, 2, 8, 8}) {
		t.Errorf("Inset = %+v", got)
	}
	if got := r.Inset(6); !got.Empty() {
		t.Errorf("over-inset should be empty, got %+v", got)
	}
	if got := r.Translate(3, -1); got != (Rect{3, -1, 13, 9}) {
		t.Errorf("Translate = %+v", got)
	}
	if got := r.Center(); got != Pt(5, 5) {
		t.Errorf("Center = %v", got)
	}
}

func TestRectFromPoints(t *testing.T) {
	r := RectFromPoints(Pt(5, 1), Pt(2, 7))
	if r != (Rect{2, 1, 5, 7}) {
		t.Errorf("RectFromPoints = %+v", r)
	}
}

func TestUnionCommutativeProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		for _, v := range []float64{ax, ay, bx, by, cx, cy, dx, dy} {
			if !mathx.Finite(v) {
				return true
			}
		}
		r1 := RectFromPoints(Pt(ax, ay), Pt(bx, by))
		r2 := RectFromPoints(Pt(cx, cy), Pt(dx, dy))
		return r1.Union(r2) == r2.Union(r1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
