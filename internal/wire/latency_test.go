package wire

import "testing"

// TestSentLatencyClamps: the e2e skew clamp never yields a negative
// observation, suppresses unstamped frames, and caps stamps older than
// process start at process uptime.
func TestSentLatencyClamps(t *testing.T) {
	const start = int64(1_000_000_000_000) // process start, Unix ns
	now := start + 5_000_000               // 5ms of uptime

	for _, tc := range []struct {
		name   string
		sentNS int64
		want   int64
		ok     bool
	}{
		{"normal", now - 1_000_000, 1_000_000, true},
		{"unstamped", 0, 0, false},
		{"negative stamp", -7, 0, false},
		{"client clock ahead", now + 3_000_000, 0, true},
		{"stamp at now", now, 0, true},
		{"older than process start", start - 1_000_000_000, now - start, true},
		{"exactly process start", start, now - start, true},
	} {
		got, ok := SentLatency(now, tc.sentNS, start)
		if got != tc.want || ok != tc.ok {
			t.Errorf("%s: SentLatency = (%d, %v), want (%d, %v)", tc.name, got, ok, tc.want, tc.ok)
		}
		if got < 0 {
			t.Errorf("%s: negative latency %d", tc.name, got)
		}
	}

	// Pathological: now before startNS (clock stepped backwards) still
	// clamps to zero rather than going negative.
	if got, ok := SentLatency(start-10, start-20, start); !ok || got != 0 {
		t.Errorf("clock step: SentLatency = (%d, %v), want (0, true)", got, ok)
	}
}
