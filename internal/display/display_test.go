package display

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/geom"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("fresh clock not at 0")
	}
	c.Advance(1.5)
	if c.Now() != 1.5 {
		t.Fatalf("Now = %v", c.Now())
	}
	c.AdvanceTo(1.0) // backwards: ignored
	if c.Now() != 1.5 {
		t.Fatalf("clock went backwards: %v", c.Now())
	}
}

func TestTimersFireInOrder(t *testing.T) {
	var c Clock
	var fired []int
	c.Schedule(0.3, func() { fired = append(fired, 3) })
	c.Schedule(0.1, func() { fired = append(fired, 1) })
	c.Schedule(0.2, func() { fired = append(fired, 2) })
	c.Advance(0.25)
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("fired = %v", fired)
	}
	c.Advance(0.1)
	if len(fired) != 3 || fired[2] != 3 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestTimerCancel(t *testing.T) {
	var c Clock
	fired := false
	tm := c.Schedule(0.1, func() { fired = true })
	if c.PendingTimers() != 1 {
		t.Fatal("timer not pending")
	}
	c.Cancel(tm)
	c.Advance(1)
	if fired {
		t.Fatal("canceled timer fired")
	}
	if c.PendingTimers() != 0 {
		t.Fatal("canceled timer still counted")
	}
	c.Cancel(nil) // must not panic
}

func TestTimerScheduledByTimer(t *testing.T) {
	var c Clock
	var fired []string
	c.Schedule(0.1, func() {
		fired = append(fired, "a")
		c.Schedule(0.1, func() { fired = append(fired, "b") })
	})
	c.Advance(0.5)
	if len(fired) != 2 || fired[0] != "a" || fired[1] != "b" {
		t.Fatalf("fired = %v", fired)
	}
}

func TestClockTimeDuringTimer(t *testing.T) {
	var c Clock
	var at float64 = -1
	c.Schedule(0.2, func() { at = c.Now() })
	c.Advance(1)
	if at != 0.2 {
		t.Fatalf("timer observed clock %v, want 0.2", at)
	}
}

func TestDisplayPostDelivers(t *testing.T) {
	var got []Event
	d := New(func(ev Event) { got = append(got, ev) })
	d.Post(Event{Kind: MouseDown, X: 1, Y: 2, Time: 0.5})
	if len(got) != 1 || got[0].Kind != MouseDown {
		t.Fatalf("got %v", got)
	}
	if d.Now() != 0.5 {
		t.Fatalf("clock = %v", d.Now())
	}
	// Tick events advance the clock but are not delivered.
	d.Post(Event{Kind: Tick, Time: 1.0})
	if len(got) != 1 || d.Now() != 1.0 {
		t.Fatal("tick misbehaved")
	}
}

func TestTimersFireBeforeLaterEvents(t *testing.T) {
	var order []string
	d := New(func(ev Event) { order = append(order, "event") })
	d.Schedule(0.1, func() { order = append(order, "timer") })
	d.Post(Event{Kind: MouseMove, Time: 0.2})
	if len(order) != 2 || order[0] != "timer" || order[1] != "event" {
		t.Fatalf("order = %v", order)
	}
}

func TestReplaySortsByTime(t *testing.T) {
	var times []float64
	d := New(func(ev Event) { times = append(times, ev.Time) })
	d.Replay([]Event{
		{Kind: MouseMove, Time: 0.3},
		{Kind: MouseMove, Time: 0.1},
		{Kind: MouseMove, Time: 0.2},
	})
	if len(times) != 3 || times[0] != 0.1 || times[2] != 0.3 {
		t.Fatalf("times = %v", times)
	}
}

func TestStrokeTrace(t *testing.T) {
	p := geom.Path{{X: 0, Y: 0, T: 0}, {X: 5, Y: 5, T: 0.02}, {X: 10, Y: 10, T: 0.04}}
	evs := StrokeTrace(p, LeftButton, 0.05)
	if len(evs) != 4 {
		t.Fatalf("len = %d", len(evs))
	}
	if evs[0].Kind != MouseDown || evs[1].Kind != MouseMove || evs[3].Kind != MouseUp {
		t.Fatalf("kinds wrong: %v", evs)
	}
	if evs[3].Time != 0.09 || evs[3].X != 10 {
		t.Fatalf("mouse-up = %+v", evs[3])
	}
	if StrokeTrace(nil, LeftButton, 0) != nil {
		t.Error("empty path should produce nil trace")
	}
}

func TestDragTrace(t *testing.T) {
	evs := DragTrace(geom.Pt(0, 0), geom.Pt(10, 0), 5, 1.0, 0.5, LeftButton)
	if evs[0].Kind != MouseDown || evs[len(evs)-1].Kind != MouseUp {
		t.Fatal("endpoints wrong")
	}
	if len(evs) != 7 {
		t.Fatalf("len = %d", len(evs))
	}
	if evs[len(evs)-1].X != 10 {
		t.Fatal("drag does not end at target")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Time <= evs[i-1].Time {
			t.Fatal("times not increasing")
		}
	}
	// n<1 clamps.
	if evs := DragTrace(geom.Pt(0, 0), geom.Pt(1, 1), 0, 0, 0.1, LeftButton); len(evs) != 3 {
		t.Fatalf("clamped drag len = %d", len(evs))
	}
}

func TestHoldAfter(t *testing.T) {
	p := geom.Path{{X: 0, Y: 0, T: 0}, {X: 5, Y: 5, T: 0.02}}
	evs := StrokeTrace(p, LeftButton, 0.01)
	held := HoldAfter(evs, 0.3)
	if held[len(held)-1].Time != evs[len(evs)-1].Time+0.3 {
		t.Fatal("hold not applied to mouse-up")
	}
	if held[0].Time != evs[0].Time {
		t.Fatal("hold shifted earlier events")
	}
	if HoldAfter(nil, 1) != nil {
		t.Error("empty trace should stay nil")
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	tr := &Trace{Name: "demo"}
	tr.Append(
		Event{Kind: MouseDown, X: 1, Y: 2, Time: 0.5, Button: RightButton},
		Event{Kind: MouseMove, X: 3, Y: 4, Time: 0.52},
		Event{Kind: Tick, Time: 0.7},
		Event{Kind: MouseUp, X: 3, Y: 4, Time: 0.9},
	)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("round trip:\n%+v\n%+v", tr, got)
	}
	if tr.Len() != 4 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestTraceFileAndReplay(t *testing.T) {
	tr := &Trace{Name: "file"}
	tr.Append(
		Event{Kind: MouseDown, X: 1, Y: 1, Time: 0},
		Event{Kind: MouseUp, X: 1, Y: 1, Time: 0.1},
	)
	path := t.TempDir() + "/trace.json"
	if err := tr.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []EventKind
	d := New(func(ev Event) { kinds = append(kinds, ev.Kind) })
	d.Replay(loaded.Events)
	if len(kinds) != 2 || kinds[0] != MouseDown || kinds[1] != MouseUp {
		t.Fatalf("replayed kinds = %v", kinds)
	}
	if _, err := LoadTrace(path + ".missing"); err == nil {
		t.Error("missing trace accepted")
	}
}

func TestTraceRejectsUnknownKind(t *testing.T) {
	bad := `{"name":"x","events":[{"kind":"warp","x":0,"y":0,"t":0}]}`
	if _, err := ReadTrace(bytes.NewBufferString(bad)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ReadTrace(bytes.NewBufferString("nope")); err == nil {
		t.Error("garbage accepted")
	}
}
