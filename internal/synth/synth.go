// Package synth generates synthetic single-stroke gestures with realistic
// sampling characteristics. It is this reproduction's substitute for the
// human mouse/stylus input the paper collected on a DEC MicroVAX II: the
// recognizer consumes only (x, y, t) sequences, and these generators are
// calibrated to the paper's figures — gestures of roughly 8–60 points,
// sampled at mouse rates, with spatial jitter, speed variation, and the
// specific failure mode the paper reports ("a corner looping 270 degrees
// rather than being a sharp 90").
//
// All generation is deterministic for a given seed.
package synth

import (
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/gesture"
	"repro/internal/mathx"
)

// Params controls the stroke synthesizer.
type Params struct {
	// Seed drives all randomness. Identical Params produce identical sets.
	Seed int64
	// DT is the nominal sampling interval in seconds (mouse event rate).
	DT float64
	// Speed is the nominal drawing speed in pixels/second.
	Speed float64
	// SpeedJitter is the fractional per-gesture speed variation.
	SpeedJitter float64
	// Jitter is the per-point Gaussian positional noise, in pixels.
	Jitter float64
	// TimeJitter is the fractional per-sample timestamp noise.
	TimeJitter float64
	// ScaleJitter is the fractional per-gesture size variation.
	ScaleJitter float64
	// RotJitter is the per-gesture rotation noise, in radians.
	RotJitter float64
	// CornerLoopProb is the probability that any given corner is drawn as
	// a ~270-degree loop in the wrong direction instead of a sharp turn —
	// the error mode the paper observed in its test data.
	CornerLoopProb float64
	// CornerLoopRadius is the radius of such loops, in pixels.
	CornerLoopRadius float64
}

// DefaultParams returns parameters that produce gestures comparable to the
// paper's data: ~20 ms sampling, a few hundred pixels/second, light jitter,
// and a 5% corner-loop rate.
func DefaultParams(seed int64) Params {
	return Params{
		Seed:             seed,
		DT:               0.02,
		Speed:            380,
		SpeedJitter:      0.18,
		Jitter:           1.1,
		TimeJitter:       0.08,
		ScaleJitter:      0.12,
		RotJitter:        0.05,
		CornerLoopProb:   0.05,
		CornerLoopRadius: 7,
	}
}

// Class describes one gesture class as a skeleton polyline. The synthesizer
// perturbs and samples the skeleton to produce examples.
type Class struct {
	Name string
	// Skeleton is the ideal polyline, in a y-grows-downward coordinate
	// system. A single-point skeleton denotes a "dot" gesture (two nearly
	// coincident samples).
	Skeleton []geom.Point
	// DecisionVertex is the index of the skeleton vertex after which the
	// class becomes visually unambiguous (the corner turn in the paper's
	// fig. 9 sets), or -1 when no such oracle is defined. It feeds the
	// "minimum points before unambiguous" measurement that the author
	// determined by hand.
	DecisionVertex int
}

// Sample is one generated gesture with its ground-truth metadata.
type Sample struct {
	Class string
	G     gesture.Gesture
	// MinPoints is the oracle minimum number of mouse points that must be
	// seen before the gesture is unambiguous (0 when no oracle applies).
	MinPoints int
}

// Generator synthesizes gestures. Not safe for concurrent use.
type Generator struct {
	p   Params
	rng *rand.Rand
}

// NewGenerator returns a generator for the given parameters.
func NewGenerator(p Params) *Generator {
	if p.DT <= 0 {
		p.DT = 0.02
	}
	if p.Speed <= 0 {
		p.Speed = 380
	}
	return &Generator{p: p, rng: rand.New(rand.NewSource(p.Seed))}
}

// Sample generates one example of the class at a random origin.
func (g *Generator) Sample(c Class) Sample {
	return g.SampleAt(c, g.randOrigin())
}

// SampleAt generates one example of the class with its skeleton anchored at
// the given origin — used when a gesture must land on a particular object,
// e.g. when driving GDP over a scene.
func (g *Generator) SampleAt(c Class, origin geom.Point) Sample {
	if len(c.Skeleton) <= 1 {
		return g.dot(c, origin)
	}
	poly, decisionLen := g.render(c, origin)
	pts, minPts := g.trace(poly, decisionLen)
	return Sample{Class: c.Name, G: gesture.New(pts), MinPoints: minPts}
}

// Set generates n examples of every class, returning both a training set
// and the per-example metadata (aligned with the set's example order).
func (g *Generator) Set(name string, classes []Class, n int) (*gesture.Set, []Sample) {
	set := &gesture.Set{Name: name}
	var meta []Sample
	for _, c := range classes {
		for i := 0; i < n; i++ {
			s := g.Sample(c)
			set.Add(s.Class, s.G)
			meta = append(meta, s)
		}
	}
	return set, meta
}

// dot produces the GDP "dot" gesture: a press and release with essentially
// no motion.
func (g *Generator) dot(c Class, origin geom.Point) Sample {
	var base geom.Point
	if len(c.Skeleton) == 1 {
		base = c.Skeleton[0]
	}
	p0 := base.Add(origin)
	p1 := p0.Add(geom.Pt(g.rng.NormFloat64()*0.6, g.rng.NormFloat64()*0.6))
	dt := 0.03 + g.rng.Float64()*0.05
	pts := geom.Path{
		{X: p0.X, Y: p0.Y, T: 0},
		{X: p1.X, Y: p1.Y, T: dt},
	}
	return Sample{Class: c.Name, G: gesture.New(pts)}
}

func (g *Generator) randOrigin() geom.Point {
	return geom.Pt(100+g.rng.Float64()*300, 100+g.rng.Float64()*200)
}

// render turns the class skeleton into a dense polyline to be traced,
// applying the per-gesture transform and corner-loop defects. It returns
// the polyline and the arc length at which the decision vertex falls
// (-1 when the class has no decision oracle).
func (g *Generator) render(c Class, origin geom.Point) ([]geom.Point, float64) {
	// Per-gesture similarity transform about the first vertex.
	scale := 1 + g.rng.NormFloat64()*g.p.ScaleJitter
	scale = mathx.Clamp(scale, 0.6, 1.5)
	rot := g.rng.NormFloat64() * g.p.RotJitter
	skel := make([]geom.Point, len(c.Skeleton))
	for i, p := range c.Skeleton {
		q := p.Sub(c.Skeleton[0]).Scale(scale).Rotate(rot).Add(c.Skeleton[0])
		skel[i] = q.Add(origin)
	}

	out := []geom.Point{skel[0]}
	decisionLen := -1.0
	runLen := 0.0
	for i := 1; i < len(skel); i++ {
		prev := out[len(out)-1]
		// Interior vertex with a potential corner defect?
		isCorner := i < len(skel)-1
		if isCorner && g.rng.Float64() < g.p.CornerLoopProb {
			loop := g.cornerLoop(skel[i-1], skel[i], skel[i+1])
			runLen += prev.Dist(skel[i])
			out = append(out, skel[i])
			for _, lp := range loop {
				runLen += out[len(out)-1].Dist(lp)
				out = append(out, lp)
			}
		} else {
			runLen += prev.Dist(skel[i])
			out = append(out, skel[i])
		}
		if i == c.DecisionVertex {
			decisionLen = runLen
		}
	}
	return out, decisionLen
}

// cornerLoop builds the paper's observed failure mode: instead of turning
// sharply from the incoming to the outgoing direction, the pen sweeps a
// small loop the long way around (e.g. -270 degrees instead of +90).
func (g *Generator) cornerLoop(a, v, b geom.Point) []geom.Point {
	d1 := v.Sub(a)
	d2 := b.Sub(v)
	a1 := d1.Angle()
	a2 := d2.Angle()
	turn := mathx.NormalizeAngle(a2 - a1)
	if turn == 0 {
		return nil
	}
	// Go the other way around: a turn of turn - sign(turn)*2*pi.
	longTurn := turn - math.Copysign(2*math.Pi, turn)
	r := g.p.CornerLoopRadius * (0.8 + g.rng.Float64()*0.5)
	const steps = 10
	pts := make([]geom.Point, 0, steps)
	heading := a1
	cur := v
	stepLen := math.Abs(longTurn) * r / steps
	for i := 0; i < steps; i++ {
		heading += longTurn / steps
		cur = cur.Add(geom.Pt(math.Cos(heading), math.Sin(heading)).Scale(stepLen))
		pts = append(pts, cur)
	}
	// Re-aim at b so the outgoing segment stays on course.
	return pts
}

// trace samples the polyline at mouse rate with speed and position noise.
// It returns the samples and the oracle minimum point count (the first
// sample index strictly past decisionLen, 1-based), or 0 when decisionLen
// is negative.
func (g *Generator) trace(poly []geom.Point, decisionLen float64) (geom.Path, int) {
	total := geom.PolylineLength(poly)
	base := g.p.Speed * (1 + g.rng.NormFloat64()*g.p.SpeedJitter)
	base = math.Max(80, base)

	var pts geom.Path
	minPts := 0
	t := 0.0
	pos := 0.0
	for {
		p, _ := geom.PointAlongPolyline(poly, pos)
		jp := p.Add(geom.Pt(g.rng.NormFloat64()*g.p.Jitter, g.rng.NormFloat64()*g.p.Jitter))
		pts = append(pts, geom.TimedPoint{X: jp.X, Y: jp.Y, T: t})
		if decisionLen >= 0 && minPts == 0 && pos > decisionLen {
			minPts = len(pts)
		}
		if pos >= total {
			break
		}
		// Ease-in/ease-out speed profile along the stroke.
		frac := pos / total
		v := base * (0.55 + 0.75*math.Sin(math.Pi*mathx.Clamp(frac, 0, 1)))
		v = math.Max(60, v)
		pos = math.Min(total, pos+v*g.p.DT)
		t += g.p.DT * math.Max(0.2, 1+g.rng.NormFloat64()*g.p.TimeJitter)
	}
	if decisionLen >= 0 && minPts == 0 {
		minPts = len(pts)
	}
	return pts, minPts
}
