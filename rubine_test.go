package rubine

import (
	"testing"
)

func TestGenerateAndTrainFull(t *testing.T) {
	set := Generate(EightDirections, 10, 1)
	if set == nil || set.Len() != 80 {
		t.Fatalf("Generate returned %v", set)
	}
	rec, err := TrainFull(set, DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	test := Generate(EightDirections, 10, 2)
	acc, _, err := rec.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("accuracy %.3f", acc)
	}
}

func TestTrainEagerAndSession(t *testing.T) {
	set := Generate(UD, 12, 3)
	rec, report, err := TrainEager(set, DefaultEagerOptions())
	if err != nil {
		t.Fatal(err)
	}
	if report.Subgestures == 0 {
		t.Error("empty report")
	}
	test := Generate(UD, 5, 4)
	for _, e := range test.Examples {
		s, err := rec.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		fired := false
		for _, p := range e.Gesture.Points {
			ok, class, err := s.Add(p)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				fired = true
				if class == "" {
					t.Fatal("empty class on fire")
				}
			}
		}
		final, err := s.End()
		if err != nil {
			t.Fatal(err)
		}
		if final != "U" && final != "D" {
			t.Fatalf("class %q", final)
		}
		_ = fired
	}
}

func TestClassesCatalog(t *testing.T) {
	for name, want := range map[string]int{UD: 2, EightDirections: 8, GDPSet: 11, Notes: 5} {
		if got := len(Classes(name)); got != want {
			t.Errorf("Classes(%s) = %d classes, want %d", name, got, want)
		}
	}
	if Classes("bogus") != nil || Generate("bogus", 1, 1) != nil {
		t.Error("unknown set not rejected")
	}
}

func TestNewGDPFacade(t *testing.T) {
	app, err := NewGDP(GDPConfig{TrainPerClass: 5, Mode: ModeMouseUp})
	if err != nil {
		t.Fatal(err)
	}
	if app.Scene.Len() != 0 {
		t.Error("fresh GDP has shapes")
	}
}

func TestFacadeHelpers(t *testing.T) {
	p := Pt(1, 2)
	if p.X != 1 || p.Y != 2 {
		t.Error("Pt")
	}
	tp := TPt(1, 2, 3)
	if tp.T != 3 {
		t.Error("TPt")
	}
	g := NewGesture(Path{tp})
	if g.Len() != 1 {
		t.Error("NewGesture")
	}
	if DefaultGenParams(9).Seed != 9 {
		t.Error("DefaultGenParams")
	}
}
