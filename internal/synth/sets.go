package synth

import (
	"math"

	"repro/internal/geom"
)

// UDClasses returns the paper's pedagogical two-class set (figures 5–7):
// both classes start with a horizontal segment; U turns up, D turns down.
func UDClasses() []Class {
	return []Class{
		{Name: "U", Skeleton: []geom.Point{{X: 0, Y: 0}, {X: 85, Y: 0}, {X: 85, Y: -65}}, DecisionVertex: 1},
		{Name: "D", Skeleton: []geom.Point{{X: 0, Y: 0}, {X: 85, Y: 0}, {X: 85, Y: 65}}, DecisionVertex: 1},
	}
}

// RightStrokeClass returns the extra single-segment class the paper uses to
// motivate the exclusion floor in the accidental-completeness threshold
// ("if, in addition to U and D, there is a third gesture class consisting
// simply of a right stroke").
func RightStrokeClass() Class {
	return Class{Name: "R", Skeleton: []geom.Point{{X: 0, Y: 0}, {X: 85, Y: 0}}, DecisionVertex: -1}
}

// EightDirectionClasses returns the figure-9 evaluation set: eight
// two-segment gestures named for their segment directions ("ur" = up then
// right). Every gesture is ambiguous along its first segment and becomes
// unambiguous once the corner is turned.
func EightDirectionClasses() []Class {
	dirs := map[byte]geom.Point{
		'u': {X: 0, Y: -1},
		'd': {X: 0, Y: 1},
		'l': {X: -1, Y: 0},
		'r': {X: 1, Y: 0},
	}
	const seg = 75.0
	names := []string{"ur", "ul", "dr", "dl", "ru", "rd", "lu", "ld"}
	out := make([]Class, 0, len(names))
	for _, n := range names {
		d1 := dirs[n[0]].Scale(seg)
		d2 := dirs[n[1]].Scale(seg)
		p0 := geom.Pt(0, 0)
		p1 := p0.Add(d1)
		p2 := p1.Add(d2)
		out = append(out, Class{
			Name:           n,
			Skeleton:       []geom.Point{p0, p1, p2},
			DecisionVertex: 1,
		})
	}
	return out
}

// arc samples a circular arc as a polyline: center (cx, cy), radius r,
// from startAngle sweeping by sweep radians (positive = clockwise in
// screen coordinates, since y grows downward), with n segments.
func arc(cx, cy, rx, ry, startAngle, sweep float64, n int) []geom.Point {
	pts := make([]geom.Point, 0, n+1)
	for i := 0; i <= n; i++ {
		a := startAngle + sweep*float64(i)/float64(n)
		pts = append(pts, geom.Pt(cx+rx*math.Cos(a), cy+ry*math.Sin(a)))
	}
	return pts
}

// GDPClasses returns this reproduction's stylization of GDP's eleven
// gesture classes (figure 3 / figure 10): line, rectangle, ellipse, group,
// text, delete, edit, move, rotate-scale, copy, and dot. Shapes are chosen
// so the ambiguity structure matches the paper's discussion:
//
//   - rect is the only class that starts straight down (trained in the
//     single "U" orientation, so it is eagerly recognizable very early);
//   - group is clockwise, per the paper's note that a counterclockwise
//     group prevented copy from ever being eagerly recognized;
//   - copy and ellipse are counterclockwise curves, so they share a prefix
//     with each other but not with group;
//   - dot is a two-point press-and-release.
func GDPClasses() []Class {
	classes := []Class{
		{
			Name:           "line",
			Skeleton:       []geom.Point{{X: 0, Y: 0}, {X: 95, Y: 72}},
			DecisionVertex: -1,
		},
		{
			Name: "rect", // "U" orientation: down, right, up
			Skeleton: []geom.Point{
				{X: 0, Y: 0}, {X: 0, Y: 70}, {X: 58, Y: 70}, {X: 58, Y: 0},
			},
			DecisionVertex: -1,
		},
		{
			Name:           "ellipse", // counterclockwise closed oval
			Skeleton:       arc(0, 0, 46, 31, -math.Pi/2, -2*math.Pi, 16),
			DecisionVertex: -1,
		},
		{
			Name:           "group", // big clockwise lasso, slightly overlapping
			Skeleton:       arc(0, 0, 58, 52, -math.Pi/2, 2*math.Pi*1.06, 18),
			DecisionVertex: -1,
		},
		{
			Name: "text", // small horizontal wave
			Skeleton: []geom.Point{
				{X: 0, Y: 0}, {X: 16, Y: 13}, {X: 32, Y: -2}, {X: 48, Y: 13}, {X: 64, Y: 0},
			},
			DecisionVertex: -1,
		},
		{
			Name: "delete", // scratch with sharp reversals
			Skeleton: []geom.Point{
				{X: 0, Y: 0}, {X: 48, Y: 52}, {X: 4, Y: 40}, {X: 52, Y: 96},
			},
			DecisionVertex: -1,
		},
		{
			Name: "edit", // the "27"-like squiggle
			Skeleton: []geom.Point{
				{X: 0, Y: 10}, {X: 22, Y: -6}, {X: 34, Y: 12}, {X: 6, Y: 34},
				{X: 42, Y: 34}, {X: 24, Y: 70},
			},
			DecisionVertex: -1,
		},
		{
			Name: "move", // chevron: up-right then down-right
			Skeleton: []geom.Point{
				{X: 0, Y: 0}, {X: 38, Y: -46}, {X: 76, Y: 0},
			},
			DecisionVertex: 1,
		},
		{
			Name:           "rotate-scale", // clockwise arc past a full turn
			Skeleton:       arc(0, 0, 36, 36, 0, 2*math.Pi*1.25, 20),
			DecisionVertex: -1,
		},
		{
			Name:           "copy", // counterclockwise "C", 3/4 turn
			Skeleton:       arc(0, 0, 27, 27, -math.Pi/2, -1.5*math.Pi, 12),
			DecisionVertex: -1,
		},
		{
			Name:           "dot",
			Skeleton:       []geom.Point{{X: 0, Y: 0}},
			DecisionVertex: -1,
		},
	}
	return classes
}

// NoteClasses returns Buxton's musical-note gesture set (figure 8): five
// classes where every shorter note's gesture is a strict prefix of the next
// longer one — quarter, eighth, sixteenth, thirty-second, sixty-fourth.
// The paper uses this set to show gestures NOT amenable to eager
// recognition: "these gestures would always be considered ambiguous by the
// eager recognizer, and thus would never be eagerly recognized."
func NoteClasses() []Class {
	stem := []geom.Point{{X: 0, Y: 0}, {X: 0, Y: 72}}
	flags := []geom.Point{
		{X: 15, Y: 58}, {X: 0, Y: 44}, {X: 15, Y: 30}, {X: 0, Y: 16},
	}
	names := []string{"quarter", "eighth", "sixteenth", "thirtysecond", "sixtyfourth"}
	out := make([]Class, 0, len(names))
	for i, n := range names {
		skel := append([]geom.Point(nil), stem...)
		skel = append(skel, flags[:i]...)
		out = append(out, Class{Name: n, Skeleton: skel, DecisionVertex: -1})
	}
	return out
}

// ProofreaderClasses returns a stylization of the proofreader's marks from
// the paper's introduction (figure 1, after Buxton and Coleman): the
// "move text" circling gesture, an insert caret, and a delete strike.
// The move gesture is a closed loop around the text; in one-phase use it
// continues with a tail to the destination (see WithTail), which is
// exactly the high-variance part the paper's conclusion says should be
// manipulation instead.
func ProofreaderClasses() []Class {
	return []Class{
		{
			Name:           "move-text", // circling selection loop (a phrase)
			Skeleton:       arc(0, 0, 34, 22, math.Pi/2, 2*math.Pi*1.04, 14),
			DecisionVertex: -1,
		},
		{
			// A second loop differing from move-text chiefly by size —
			// the distinction lives in exactly the features (bounding box,
			// path length, endpoint distance) that a random destination
			// tail swamps.
			Name:           "move-word", // tight loop around one word
			Skeleton:       arc(0, 0, 14, 10, math.Pi/2, 2*math.Pi*1.04, 12),
			DecisionVertex: -1,
		},
		{
			Name: "insert", // caret
			Skeleton: []geom.Point{
				{X: 0, Y: 0}, {X: 18, Y: -26}, {X: 36, Y: 0},
			},
			DecisionVertex: 1,
		},
		{
			Name: "delete-text", // strike-through with pigtail
			Skeleton: []geom.Point{
				{X: 0, Y: 0}, {X: 48, Y: -6}, {X: 58, Y: -16}, {X: 50, Y: -22}, {X: 44, Y: -12},
			},
			DecisionVertex: -1,
		},
	}
}

// WithTail appends a destination tail to a class skeleton: the stroke
// continues from the gesture's end to a point offset by (dx, dy). In the
// paper's one-phase systems the move-text tail indicates the destination
// and varies enormously between instances; the two-phase interaction moves
// it into the manipulation phase.
func WithTail(c Class, dx, dy float64) Class {
	out := c
	out.Skeleton = append(append([]geom.Point(nil), c.Skeleton...),
		c.Skeleton[len(c.Skeleton)-1].Add(geom.Pt(dx, dy)))
	return out
}

// RotatedClass returns a copy of the class with its skeleton rotated by
// angle radians about its first vertex. The paper's modified GDP requires
// the rectangle gesture to be "trained in multiple orientations"; this
// helper builds those variants.
func RotatedClass(c Class, angle float64) Class {
	out := c
	out.Skeleton = make([]geom.Point, len(c.Skeleton))
	for i, p := range c.Skeleton {
		out.Skeleton[i] = p.Sub(c.Skeleton[0]).Rotate(angle).Add(c.Skeleton[0])
	}
	return out
}

// ClassNames returns the names of a class slice, in order.
func ClassNames(classes []Class) []string {
	out := make([]string, len(classes))
	for i, c := range classes {
		out[i] = c.Name
	}
	return out
}
