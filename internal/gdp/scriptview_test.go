package gdp

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/grandma"
	"repro/internal/script"
)

func TestScriptViewCreateRectPaperSemantics(t *testing.T) {
	app := newApp(t, grandma.ModeMouseUp)
	env := script.NewEnv()
	env.SetVar("view", app.ScriptView())
	env.SetAttr("startX", 10.0)
	env.SetAttr("startY", 20.0)

	// The exact semantics text from the paper's section 3.2.
	recog := script.MustParse("recog = [[view createRect] setEndpoint:0 x:<startX> y:<startY>]")
	if _, err := recog.Eval(env); err != nil {
		t.Fatal(err)
	}
	env.SetAttr("currentX", 110.0)
	env.SetAttr("currentY", 90.0)
	manip := script.MustParse("[recog setEndpoint:1 x:<currentX> y:<currentY>]")
	if _, err := manip.Eval(env); err != nil {
		t.Fatal(err)
	}
	if app.Scene.Len() != 1 {
		t.Fatalf("scene = %v", app.Scene.Kinds())
	}
	r := app.Scene.Shapes()[0].(*Rect)
	if r.X1 != 10 || r.Y1 != 20 || r.X2 != 110 || r.Y2 != 90 {
		t.Errorf("rect = %+v", r)
	}
}

func TestScriptViewAllCreators(t *testing.T) {
	app := newApp(t, grandma.ModeMouseUp)
	env := script.NewEnv()
	env.SetVar("view", app.ScriptView())
	srcs := []string{
		"[[view createLine] setEndpoint:1 x:50 y:60]",
		"[[view createEllipse] setCenterX:100 y:100]",
		`[[view createText:"label"] setCenterX:30 y:30]`,
		"[[view createDot] setCenterX:5 y:5]",
	}
	for _, src := range srcs {
		if _, err := script.MustParse(src).Eval(env); err != nil {
			t.Fatalf("%s: %v", src, err)
		}
	}
	if app.Scene.Len() != 4 {
		t.Fatalf("scene = %v", app.Scene.Kinds())
	}
	e := app.Scene.Shapes()[1].(*Ellipse)
	if e.CX != 100 || e.CY != 100 {
		t.Errorf("ellipse center (%v,%v)", e.CX, e.CY)
	}
	if app.Scene.Shapes()[2].(*Text).S != "label" {
		t.Error("text content")
	}
}

func TestScriptViewRadiiAndMove(t *testing.T) {
	app := newApp(t, grandma.ModeMouseUp)
	env := script.NewEnv()
	env.SetVar("view", app.ScriptView())
	src := "e = [[view createEllipse] setCenterX:50 y:50]; [e setRadiiX:-20 y:10]; [e moveToX:100 y:100]"
	if _, err := script.MustParse(src).Eval(env); err != nil {
		t.Fatal(err)
	}
	e := app.Scene.Shapes()[0].(*Ellipse)
	if e.RX != 20 || e.RY != 10 {
		t.Errorf("radii (%v,%v)", e.RX, e.RY)
	}
	if b := e.Bounds(); b.MinX != 100 || b.MinY != 100 {
		t.Errorf("bounds after move %+v", b)
	}
}

func TestScriptViewErrors(t *testing.T) {
	app := newApp(t, grandma.ModeMouseUp)
	env := script.NewEnv()
	env.SetVar("view", app.ScriptView())
	for _, src := range []string{
		"[[view createDot] setEndpoint:0 x:1 y:2]", // dots have no endpoints
		"[[view createLine] setRadiiX:1 y:2]",      // lines have no radii
		`[view createText:5]`,                      // non-string text
	} {
		if _, err := script.MustParse(src).Eval(env); err == nil {
			t.Errorf("%s: expected error", src)
		}
	}
}

func TestScriptSemanticsDriveGDP(t *testing.T) {
	// Full integration: register script-language semantics for the rect
	// gesture and drive it with a synthetic stroke, reproducing the
	// paper's configuration end to end.
	app := newApp(t, grandma.ModeEager)
	var scriptErr error
	sem, err := grandma.ScriptSemantics(
		"recog = [[view createRect] setEndpoint:0 x:<startX> y:<startY>]",
		"[recog setEndpoint:1 x:<currentX> y:<currentY>]",
		"nil",
		func(a *grandma.Attrs, env *script.Env) { env.SetVar("view", app.ScriptView()) },
		func(e error) { scriptErr = e },
	)
	if err != nil {
		t.Fatal(err)
	}
	app.Handler.Register("rect", sem)

	g := driver(30)
	p := gestureAt(t, g, "rect", geom.Pt(100, 100))
	app.PlayGesture(p)
	if scriptErr != nil {
		t.Fatal(scriptErr)
	}
	if app.Scene.Len() != 1 {
		t.Fatalf("scene = %v (log: %v)", app.Scene.Kinds(), app.Log)
	}
	r := app.Scene.Shapes()[0].(*Rect)
	end := p[len(p)-1]
	if r.X2 != end.X || r.Y2 != end.Y {
		t.Errorf("rubberband corner (%v,%v) vs end (%v,%v)", r.X2, r.Y2, end.X, end.Y)
	}
}
