package serve

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/obs"
)

// ErrShed reports that a Submitter gave up on an event: every attempt
// hit ErrQueueFull and the retry budget (SubmitterOptions.MaxAttempts)
// is spent. The returned error matches both ErrShed and ErrQueueFull
// under errors.Is, so callers can treat shedding as the terminal form
// of backpressure.
var ErrShed = errors.New("serve: event shed after retries")

// SubmitterOptions configures a Submitter's retry policy.
type SubmitterOptions struct {
	// MaxAttempts bounds the total Submit attempts per event (first try
	// included). 0 means retry until the event is accepted or fails for
	// a reason other than a full queue — the don't-drop-my-events policy
	// tests and demos want. 1 means never retry.
	MaxAttempts int
	// Backoff is the sleep before the first retry; each further retry
	// doubles it, capped at MaxBackoff. 0 means no sleeping at all —
	// retries just yield the processor (runtime.Gosched), which is the
	// right shape for tests with wedged consumers.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth. 0 means 32× Backoff.
	MaxBackoff time.Duration
	// Obs, when set, counts retries into serve.submitter.retries and
	// shed events into serve.submitter.shed (see OBSERVABILITY.md).
	Obs *obs.Registry `json:"-"`

	// sleep is the test seam for observing backoff; nil means
	// time.Sleep.
	sleep func(time.Duration)
}

// Submitter wraps an Engine with the producer-side retry policy that
// was previously hand-rolled at every call site: Submit retries
// ErrQueueFull with bounded exponential backoff and sheds (ErrShed)
// when the attempt budget runs out. Every other error — ErrBadEvent,
// ErrClosed — passes straight through: retrying can't fix those.
// Safe for concurrent use by any number of producers.
type Submitter struct {
	e       *Engine
	opts    SubmitterOptions
	retries *obs.Counter // serve.submitter.retries
	shed    *obs.Counter // serve.submitter.shed
}

// NewSubmitter builds a Submitter over the engine. A nil engine panics
// at first use, not here, matching the rest of the package's
// construct-then-serve flow.
func NewSubmitter(e *Engine, opts SubmitterOptions) *Submitter {
	s := &Submitter{e: e, opts: opts}
	if opts.Obs != nil {
		s.retries = opts.Obs.Counter("serve.submitter.retries")
		s.shed = opts.Obs.Counter("serve.submitter.shed")
	}
	if s.opts.sleep == nil {
		s.opts.sleep = time.Sleep
	}
	if s.opts.MaxBackoff == 0 {
		s.opts.MaxBackoff = 32 * s.opts.Backoff
	}
	return s
}

// Submit submits one event under the retry policy: nil once the engine
// accepted it, ErrShed (matching ErrQueueFull too) when the attempt
// budget ran out, and any non-backpressure error (ErrBadEvent,
// ErrClosed) immediately and unwrapped. ErrOverloaded — the admission
// controller shedding early — is also immediate: retrying into a
// brownout only deepens it, so the caller should honor the retry-after
// hint instead.
//
// Stats.Rejected (serve.events.rejected) counts the event at most once,
// when the Submitter sheds or the admission controller refuses it — not
// once per retry attempt; intermediate full-queue bounces are visible
// as serve.submitter.retries instead.
func (s *Submitter) Submit(ev Event) error {
	delay := s.opts.Backoff
	for attempt := 1; ; attempt++ {
		err := s.e.submit(ev, false)
		if err != nil && errors.Is(err, ErrOverloaded) {
			s.e.countRejected()
			return err
		}
		if err == nil || !errors.Is(err, ErrQueueFull) {
			return err
		}
		if s.opts.MaxAttempts > 0 && attempt >= s.opts.MaxAttempts {
			s.e.countRejected()
			s.shed.Inc()
			return fmt.Errorf("%w (%d attempts): %w", ErrShed, attempt, err)
		}
		s.retries.Inc()
		if s.opts.Backoff <= 0 {
			runtime.Gosched()
			continue
		}
		s.opts.sleep(delay)
		delay *= 2
		if delay > s.opts.MaxBackoff {
			delay = s.opts.MaxBackoff
		}
	}
}
