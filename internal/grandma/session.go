package grandma

import (
	"repro/internal/display"
	"repro/internal/geom"
	"repro/internal/raster"
)

// Session is a running GRANDMA interface: a view tree attached to a
// headless display and an optional canvas. It implements the dispatch rule
// of §3.1: on mouse-down, the topmost view under the cursor is found and
// its handler list queried in order (instance handlers, then class-chain
// handlers, then the parent view's handlers, and so on up the tree); the
// first handler whose predicate accepts the event and whose Begin returns
// an interaction owns all input until it completes.
type Session struct {
	Root    *View
	Display *display.Display
	Canvas  *raster.Canvas

	active  Interaction
	ink     geom.Path
	inEvent bool
	dirty   bool

	// Tap, if set, observes every delivered input event before dispatch —
	// the hook behind session recording (display.Trace).
	Tap func(display.Event)

	// InkGlyph is the glyph used for gesture ink; the paper's figures show
	// gestures with dotted lines.
	InkGlyph byte
}

// NewSession creates a session over the given root view. canvas may be nil
// for interaction-only tests.
func NewSession(root *View, canvas *raster.Canvas) *Session {
	s := &Session{Root: root, Canvas: canvas, InkGlyph: '*'}
	s.Display = display.New(s.handle)
	return s
}

// Post delivers one event (advancing the virtual clock first).
func (s *Session) Post(ev display.Event) { s.Display.Post(ev) }

// Replay delivers a sequence of events in time order.
func (s *Session) Replay(events []display.Event) { s.Display.Replay(events) }

// Active reports whether an interaction is in progress.
func (s *Session) Active() bool { return s.active != nil }

// handle is the display sink. Model invalidations raised while the event
// runs are coalesced into one repaint afterwards.
func (s *Session) handle(ev display.Event) {
	if s.Tap != nil {
		s.Tap(ev)
	}
	s.inEvent = true
	defer func() {
		s.inEvent = false
		if s.dirty {
			s.dirty = false
			s.Redraw()
		}
	}()
	if s.active != nil {
		if done := s.active.Handle(ev, s); done {
			s.active = nil
		}
		return
	}
	if ev.Kind != display.MouseDown {
		return // stray move/up with no interaction in progress
	}
	p := geom.Pt(ev.X, ev.Y)
	target := s.Root.HitTest(p)
	for v := target; v != nil; v = v.parent {
		for _, h := range v.AllHandlers() {
			if !h.Wants(ev, v) {
				continue
			}
			if inter := h.Begin(ev, v, s); inter != nil {
				s.active = inter
				return
			}
		}
	}
}

// EndActive force-completes the current interaction (used by handlers that
// finish from a timer rather than an event).
func (s *Session) EndActive() { s.active = nil }

// SetInk replaces the gesture ink overlay.
func (s *Session) SetInk(p geom.Path) {
	s.ink = p
	s.Redraw()
}

// ClearInk removes the gesture ink overlay.
func (s *Session) ClearInk() {
	s.ink = nil
	s.Redraw()
}

// Redraw clears the canvas and repaints the view tree plus the ink
// overlay. It is a no-op without a canvas.
func (s *Session) Redraw() {
	if s.Canvas == nil {
		return
	}
	s.Canvas.Clear()
	s.Root.Draw(s.Canvas)
	if len(s.ink) > 0 {
		s.Canvas.Dotted(s.ink, s.InkGlyph)
	}
}
