// Command ggen emits synthetic gesture sets as JSON — the example data
// every other tool trains on and classifies.
//
// Usage:
//
//	ggen -set gdp -n 15 -seed 42 -o train.json
//
// Sets: ud (figures 5-7), eight (figure 9), gdp (figures 3/10),
// notes (figure 8).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/synth"
)

// run executes ggen with the given arguments. Extracted from main for
// tests.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ggen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	setName := fs.String("set", "gdp", "gesture set: ud|eight|gdp|notes")
	n := fs.Int("n", 15, "examples per class")
	seed := fs.Int64("seed", 42, "generator seed")
	out := fs.String("o", "", "output file (default stdout)")
	loopProb := fs.Float64("loop-prob", -1, "corner-loop defect probability (default per-set)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var classes []synth.Class
	switch *setName {
	case "ud":
		classes = synth.UDClasses()
	case "eight":
		classes = synth.EightDirectionClasses()
	case "gdp":
		classes = synth.GDPClasses()
	case "notes":
		classes = synth.NoteClasses()
	default:
		fmt.Fprintf(stderr, "ggen: unknown set %q (want ud|eight|gdp|notes)\n", *setName)
		return 2
	}

	params := synth.DefaultParams(*seed)
	if *loopProb >= 0 {
		params.CornerLoopProb = *loopProb
	}
	set, _ := synth.NewGenerator(params).Set(*setName, classes, *n)

	if *out == "" {
		if err := set.WriteJSON(stdout); err != nil {
			fmt.Fprintf(stderr, "ggen: %v\n", err)
			return 1
		}
		return 0
	}
	if err := set.SaveFile(*out); err != nil {
		fmt.Fprintf(stderr, "ggen: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "ggen: wrote %d examples (%d classes) to %s\n", set.Len(), len(classes), *out)
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
