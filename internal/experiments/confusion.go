package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/eager"
	"repro/internal/synth"
)

// Confusion is a square confusion matrix over a class list: Counts[i][j]
// is how many test gestures of Classes[i] were recognized as Classes[j].
type Confusion struct {
	Classes []string
	Counts  [][]int
}

// newConfusion returns a zeroed matrix over sorted class names.
func newConfusion(classes []string) *Confusion {
	sorted := append([]string(nil), classes...)
	sort.Strings(sorted)
	counts := make([][]int, len(sorted))
	for i := range counts {
		counts[i] = make([]int, len(sorted))
	}
	return &Confusion{Classes: sorted, Counts: counts}
}

func (c *Confusion) index(class string) int {
	for i, name := range c.Classes {
		if name == class {
			return i
		}
	}
	return -1
}

// Add records one (actual, predicted) outcome. Unknown names are ignored
// (they cannot occur for well-formed evaluations).
func (c *Confusion) Add(actual, predicted string) {
	i, j := c.index(actual), c.index(predicted)
	if i >= 0 && j >= 0 {
		c.Counts[i][j]++
	}
}

// Accuracy returns the fraction on the diagonal.
func (c *Confusion) Accuracy() float64 {
	diag, total := 0, 0
	for i := range c.Counts {
		for j, n := range c.Counts[i] {
			total += n
			if i == j {
				diag += n
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(diag) / float64(total)
}

// Errors returns the off-diagonal pairs with nonzero counts, most frequent
// first.
func (c *Confusion) Errors() []string {
	type e struct {
		s string
		n int
	}
	var errs []e
	for i := range c.Counts {
		for j, n := range c.Counts[i] {
			if i != j && n > 0 {
				errs = append(errs, e{fmt.Sprintf("%s->%s x%d", c.Classes[i], c.Classes[j], n), n})
			}
		}
	}
	sort.Slice(errs, func(a, b int) bool {
		if errs[a].n != errs[b].n {
			return errs[a].n > errs[b].n
		}
		return errs[a].s < errs[b].s
	})
	out := make([]string, len(errs))
	for i, x := range errs {
		out[i] = x.s
	}
	return out
}

// Format renders the matrix with abbreviated column headers.
func (c *Confusion) Format() string {
	var b strings.Builder
	abbrev := func(s string) string {
		if len(s) > 4 {
			return s[:4]
		}
		return s
	}
	fmt.Fprintf(&b, "%-14s", "actual\\pred")
	for _, name := range c.Classes {
		fmt.Fprintf(&b, " %4s", abbrev(name))
	}
	b.WriteByte('\n')
	for i, name := range c.Classes {
		fmt.Fprintf(&b, "%-14s", name)
		for j := range c.Classes {
			if c.Counts[i][j] == 0 && i != j {
				fmt.Fprintf(&b, " %4s", ".")
			} else {
				fmt.Fprintf(&b, " %4d", c.Counts[i][j])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Confusions runs the standard protocol on a workload and returns the
// confusion matrices of the full classifier and the eager recognizer.
func Confusions(name string, classes []synth.Class, cfg Config) (full, eagerC *Confusion, err error) {
	trainSet, _ := synth.NewGenerator(synth.DefaultParams(cfg.TrainSeed)).Set(name+"-train", classes, cfg.TrainPerClass)
	testSet, _ := synth.NewGenerator(synth.DefaultParams(cfg.TestSeed)).Set(name+"-test", classes, cfg.TestPerClass)
	rec, _, err := eager.Train(trainSet, cfg.Eager)
	if err != nil {
		return nil, nil, err
	}
	names := synth.ClassNames(classes)
	full = newConfusion(names)
	eagerC = newConfusion(names)
	for _, e := range testSet.Examples {
		pred, perr := rec.Full.Classify(e.Gesture)
		if perr != nil {
			return nil, nil, perr
		}
		full.Add(e.Class, pred)
		got, _, rerr := rec.Run(e.Gesture)
		if rerr != nil {
			return nil, nil, rerr
		}
		eagerC.Add(e.Class, got)
	}
	return full, eagerC, nil
}
