// Package lint is a small static-analysis framework modelled on
// golang.org/x/tools/go/analysis, built entirely on the standard library's
// go/ast and go/types packages so the repository needs no third-party
// modules. cmd/glint drives it over the whole repo; the linttest
// subpackage runs individual analyzers over testdata packages the way
// analysistest does.
//
// The framework exists because this recognizer is numerically fragile by
// design: training inverts a common covariance matrix and eager
// recognition thresholds on probability estimates, so a stray NaN, a
// dropped inversion error, or a panic on a degenerate stroke silently
// corrupts classification. The analyzers in this package are the
// machine-checked statement of the repo's invariants; DESIGN.md documents
// each one and the allowlist mechanism.
//
// # Suppression directives
//
// A diagnostic can be suppressed with an explicit, audited directive:
//
//	//lint:ignore <analyzer> <reason>
//
// placed either on the flagged line or alone on the line directly above
// it. The reason is mandatory — a directive without one is itself
// reported. `<analyzer>` may be a comma-separated list or `all`.
//
// Suppression is audited in both directions: a directive that names only
// analyzers that ran and yet suppressed nothing is stale, and is reported
// under the name "unuseddirective" so dead allowlist entries cannot rot
// silently. Directives naming an analyzer that did not run (for example
// "escape" outside `glint -escape`) are left alone.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check. The Run function inspects a
// type-checked package via the Pass and reports findings with
// Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:ignore
	// directives. It must be a single lowercase word.
	Name string
	// Doc is a one-paragraph description shown by `glint -list`.
	Doc string
	// Run performs the check.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats the diagnostic the way compilers do.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunAnalyzers applies each analyzer to the package and returns the
// surviving diagnostics: suppression directives are honoured, malformed
// or stale directives are reported, and the result is sorted by position.
// Drivers that combine package-level and module-level analysis (cmd/glint)
// use the Directives type directly instead, so that one shared collection
// tracks directive usage across every analysis stage before stale
// directives are judged.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, err := Analyze(fset, files, pkg, info, analyzers)
	if err != nil {
		return nil, err
	}
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	dirs := NewDirectives()
	dirs.Collect(fset, files)
	diags = dirs.Apply(diags)
	diags = append(diags, dirs.Unused(ran)...)
	SortDiagnostics(diags)
	return diags, nil
}

// Analyze runs the analyzers over one package and returns the raw
// diagnostics — unsorted, with no suppression applied. Drivers that share
// one Directives collection across several analysis stages build on this.
func Analyze(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: analyzer %s: %w", a.Name, err)
		}
		diags = append(diags, pass.diags...)
	}
	return diags, nil
}

// SortDiagnostics orders diagnostics by file, line, then column.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}

// directive is one parsed //lint:ignore comment.
type directive struct {
	file      string
	line      int // line the directive appears on
	names     []string
	nameSet   map[string]bool
	all       bool
	hasReason bool
	used      bool
	pos       token.Position
}

func (d *directive) matches(analyzer string) bool {
	return d.all || d.nameSet[analyzer]
}

// Directives is the parsed //lint:ignore allowlist of one analysis run.
// Collect gathers directives (typically from every package under
// analysis), Apply filters diagnostics through them while recording which
// directives earned their keep, and Unused reports the stale remainder.
type Directives struct {
	dirs []directive
}

// NewDirectives returns an empty collection.
func NewDirectives() *Directives { return &Directives{} }

// Collect parses the //lint:ignore directives in files into the
// collection. It may be called once per package to build a module-wide
// allowlist.
func (ds *Directives) Collect(fset *token.FileSet, files []*ast.File) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				d := directive{file: pos.Filename, line: pos.Line, pos: pos, nameSet: map[string]bool{}}
				if len(fields) > 0 {
					for _, n := range strings.Split(fields[0], ",") {
						if n == "all" {
							d.all = true
						}
						d.names = append(d.names, n)
						d.nameSet[n] = true
					}
				}
				d.hasReason = len(fields) >= 2
				ds.dirs = append(ds.dirs, d)
			}
		}
	}
}

// Apply filters out diagnostics covered by a directive on the same line or
// on the line directly above, marking the covering directive as used.
// Directives lacking a reason never suppress anything, so the allowlist
// stays auditable. Apply may be called once per analysis stage; usage
// accumulates across calls.
func (ds *Directives) Apply(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, diag := range diags {
		suppressed := false
		for i := range ds.dirs {
			d := &ds.dirs[i]
			if !d.hasReason || d.file != diag.Pos.Filename || !d.matches(diag.Analyzer) {
				continue
			}
			if d.line == diag.Pos.Line || d.line == diag.Pos.Line-1 {
				d.used = true
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, diag)
		}
	}
	return out
}

// Unused reports the degenerate directives after every analysis stage has
// Applied its diagnostics: directives without a reason (analyzer
// "directive"), and directives that suppressed nothing even though every
// analyzer they name actually ran (analyzer "unuseddirective"). A
// directive naming an analyzer outside ran — "escape" in a run without
// -escape, say — is given the benefit of the doubt and not reported.
func (ds *Directives) Unused(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for i := range ds.dirs {
		d := &ds.dirs[i]
		if !d.hasReason {
			out = append(out, Diagnostic{
				Analyzer: "directive",
				Pos:      d.pos,
				Message:  "//lint:ignore directive needs a reason: //lint:ignore <analyzer> <reason>",
			})
			continue
		}
		if d.used {
			continue
		}
		judgeable := d.all
		if !judgeable {
			judgeable = true
			for _, n := range d.names {
				if !ran[n] {
					judgeable = false
					break
				}
			}
		}
		if judgeable {
			out = append(out, Diagnostic{
				Analyzer: "unuseddirective",
				Pos:      d.pos,
				Message: fmt.Sprintf("//lint:ignore %s suppresses nothing; delete the stale directive",
					strings.Join(d.names, ",")),
			})
		}
	}
	return out
}

// isTestFile reports whether the file containing pos is a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
