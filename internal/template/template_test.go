package template

import (
	"strings"
	"testing"

	"repro/internal/gesture"
	"repro/internal/synth"
)

func sets(t *testing.T, classes []synth.Class, trainN, testN int, seed int64) (*gesture.Set, *gesture.Set) {
	t.Helper()
	trainSet, _ := synth.NewGenerator(synth.DefaultParams(seed)).Set("train", classes, trainN)
	testSet, _ := synth.NewGenerator(synth.DefaultParams(seed+1000)).Set("test", classes, testN)
	return trainSet, testSet
}

func TestEightDirectionsAccuracy(t *testing.T) {
	trainSet, testSet := sets(t, synth.EightDirectionClasses(), 10, 30, 1)
	r, err := Train(trainSet, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if acc := r.Accuracy(testSet); acc < 0.95 {
		t.Errorf("accuracy %.3f", acc)
	}
}

func TestGDPAccuracy(t *testing.T) {
	trainSet, testSet := sets(t, synth.GDPClasses(), 10, 30, 2)
	r, err := Train(trainSet, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if acc := r.Accuracy(testSet); acc < 0.9 {
		t.Errorf("GDP accuracy %.3f", acc)
	}
}

func TestNormalizationInvariances(t *testing.T) {
	trainSet, testSet := sets(t, synth.UDClasses(), 8, 10, 3)
	r, err := Train(trainSet, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range testSet.Examples {
		base := r.Classify(e.Gesture)
		// Translation invariance.
		moved := gesture.New(e.Gesture.Points.Translate(500, -300))
		if got := r.Classify(moved); got != base {
			t.Fatalf("translation changed class: %s vs %s", got, base)
		}
		// Scale invariance.
		scaled := gesture.New(e.Gesture.Points.ScaleAbout(e.Gesture.Start().Point(), 1.7))
		if got := r.Classify(scaled); got != base {
			t.Fatalf("scaling changed class: %s vs %s", got, base)
		}
	}
}

func TestRotationInvariantOption(t *testing.T) {
	// The eight-direction classes contain true rotations of one another
	// (ur rotated 90 degrees clockwise is rd, and so on), so a
	// rotation-invariant matcher must collapse those distinctions and do
	// much worse than the orientation-sensitive default.
	trainSet, testSet := sets(t, synth.EightDirectionClasses(), 10, 10, 4)
	opts := DefaultOptions()
	opts.RotationInvariant = true
	r, err := Train(trainSet, opts)
	if err != nil {
		t.Fatal(err)
	}
	rDefault, _ := Train(trainSet, DefaultOptions())
	accInv := r.Accuracy(testSet)
	accDef := rDefault.Accuracy(testSet)
	if accInv >= accDef-0.1 {
		t.Errorf("rotation invariance did not hurt the rotation-paired set: %.2f vs %.2f", accInv, accDef)
	}
}

func TestDegenerateStrokes(t *testing.T) {
	trainSet, _ := sets(t, synth.GDPClasses(), 5, 1, 5)
	r, err := Train(trainSet, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// A 2-point dot classifies without panicking, and as dot.
	g := synth.NewGenerator(synth.DefaultParams(6))
	var dotClass synth.Class
	for _, c := range synth.GDPClasses() {
		if c.Name == "dot" {
			dotClass = c
		}
	}
	s := g.Sample(dotClass)
	if got := r.Classify(s.G); got != "dot" {
		t.Errorf("dot classified as %s", got)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(&gesture.Set{}, DefaultOptions()); err == nil {
		t.Error("empty set accepted")
	}
	// Points <= 1 falls back to the default.
	trainSet, _ := sets(t, synth.UDClasses(), 3, 1, 7)
	r, err := Train(trainSet, Options{Points: 0})
	if err != nil {
		t.Fatal(err)
	}
	if r.Opts.Points != 64 {
		t.Errorf("Points default = %d", r.Opts.Points)
	}
	if !strings.Contains(r.String(), "templates") {
		t.Error("String")
	}
}
