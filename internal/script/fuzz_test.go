package script

import (
	"reflect"
	"testing"
)

// FuzzParse checks that the parser never panics on arbitrary input and
// that anything it accepts survives a Format/Parse round trip.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"x = 5; x",
		"recog = [[view createRect] setEndpoint:0 x:<startX> y:<startY>]",
		"[nil foo]",
		`"str \" esc"`,
		"// comment\nnil",
		"[a b:1 c:2]",
		"<attr>",
		"[",
		"1 2",
		"@#$",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		out := p.Format()
		p2, err := Parse(out)
		if err != nil {
			t.Fatalf("Format output unparseable: %q -> %q: %v", src, out, err)
		}
		if !reflect.DeepEqual(p.Stmts, p2.Stmts) {
			t.Fatalf("round trip changed AST: %q -> %q", src, out)
		}
	})
}
