package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a streaming histogram over fixed bucket boundaries: the
// boundaries are set at registration and never change, so two snapshots
// of the same registry are structurally identical regardless of what was
// observed. Bucket i counts observations v with bounds[i-1] < v <=
// bounds[i]; one extra overflow bucket counts v > bounds[len-1].
//
// Observe is lock-free (one atomic add per observation plus CAS loops
// for the sum and extremes) and safe for concurrent use from any number
// of goroutines. All methods are no-ops (or return zero values) on a nil
// receiver.
type Histogram struct {
	bounds []float64      // immutable after construction, ascending
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Int64
	sum    atomicFloat64
	min    atomicFloat64 // +Inf until the first observation
	max    atomicFloat64 // -Inf until the first observation
}

// newHistogram builds a histogram over a defensive copy of the given
// ascending boundaries.
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	h := &Histogram{
		bounds: b,
		counts: make([]atomic.Int64, len(b)+1),
	}
	h.min.store(math.Inf(1))
	h.max.store(math.Inf(-1))
	return h
}

// Observe records one value. NaN observations are ignored (a poisoned
// measurement must not poison the sum). No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	h.min.updateMin(v)
	h.max.updateMax(v)
}

// Count returns the number of observations; 0 on a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations; 0 on a nil receiver.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// Quantile estimates the q-quantile of the live histogram from its
// current bucket counts — see HistogramSnap.Quantile for the estimator
// and its upper-bound caveat. It snapshots the buckets first, so the
// answer is internally consistent under concurrent Observes. Returns 0
// on a nil receiver or an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return h.snapshot("").Quantile(q)
}

// snapshot captures the histogram's current state. Buckets race benignly
// with concurrent Observes: each bucket load is atomic, so totals may be
// mid-update by a handful of events but never torn.
func (h *Histogram) snapshot(name string) HistogramSnap {
	s := HistogramSnap{
		Name:   name,
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if s.Count > 0 {
		s.Min = h.min.load()
		s.Max = h.max.load()
	}
	return s
}

// HistogramSnap is the point-in-time state of one histogram inside a
// Snapshot. Counts has one entry per bucket: Counts[i] holds
// observations in (Bounds[i-1], Bounds[i]], and the final entry counts
// overflow beyond the last boundary. Min and Max are 0 when Count is 0.
type HistogramSnap struct {
	Name   string    `json:"name"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Mean returns the arithmetic mean of the observations, or 0 when empty.
func (s HistogramSnap) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts
// by linear interpolation inside the containing bucket, clamped to the
// observed min/max. This is the per-gesture-distribution signal the
// text report surfaces (p50/p95/p99). The estimate is an upper-bound
// estimate in the usual bucket-histogram sense: the true quantile lies
// in the same bucket, so the reported value never exceeds the bucket's
// upper boundary and the error is at most one bucket width.
func (s HistogramSnap) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		// The rank falls in bucket i. Interpolate across its span.
		lo := s.Min
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Max
		if i < len(s.Bounds) {
			hi = s.Bounds[i]
		}
		if lo < s.Min {
			lo = s.Min
		}
		if hi > s.Max {
			hi = s.Max
		}
		if c == 0 || hi < lo {
			return lo
		}
		frac := (rank - float64(cum)) / float64(c)
		return lo + frac*(hi-lo)
	}
	return s.Max
}
