package lint

import (
	"go/ast"
	"go/token"
)

// ExpdocPackages lists the import paths whose exported identifiers must
// all carry doc comments. These are the concurrency-bearing packages —
// the serving engine, both streaming recognizer backends, the backend
// interface itself, the session layer, and the metrics layer — where an
// undocumented exported identifier is an undocumented concurrency
// contract (DESIGN.md §7, BACKENDS.md). The var is exported so tests
// can scope the analyzer to fixture packages.
var ExpdocPackages = map[string]bool{
	"repro/internal/serve":      true,
	"repro/internal/eager":      true,
	"repro/internal/obs":        true,
	"repro/internal/template":   true,
	"repro/internal/multipath":  true,
	"repro/internal/recognizer": true,
	"repro/internal/slo":        true,
	"repro/internal/netfault":   true,
}

// Expdoc reports exported identifiers of the documented-contract
// packages that lack a doc comment.
var Expdoc = &Analyzer{
	Name: "expdoc",
	Doc: "flag exported identifiers without doc comments in the concurrency-contract packages " +
		"(repro/internal/{serve,eager,obs,template,multipath,recognizer,slo,netfault}); every exported identifier there must document its " +
		"behaviour, including its concurrency contract where it has one.",
	Run: runExpdoc,
}

func runExpdoc(pass *Pass) error {
	if !ExpdocPackages[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !exportedEntry(d) {
					continue
				}
				if d.Doc.Text() == "" {
					kind := "function"
					if d.Recv != nil {
						kind = "method"
					}
					pass.Reportf(d.Name.Pos(), "exported %s %s has no doc comment", kind, d.Name.Name)
				}
			case *ast.GenDecl:
				runExpdocGen(pass, d)
			}
		}
	}
	return nil
}

// runExpdocGen checks one type/const/var declaration. Only leading doc
// comments count — on the declaration group (covering every spec in it)
// or on the individual spec. Trailing line comments are not godoc.
func runExpdocGen(pass *Pass, d *ast.GenDecl) {
	groupDoc := d.Doc.Text() != ""
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if !groupDoc && s.Doc.Text() == "" {
				pass.Reportf(s.Name.Pos(), "exported type %s has no doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			kind := "var"
			if d.Tok == token.CONST {
				kind = "const"
			}
			documented := groupDoc || s.Doc.Text() != ""
			for _, name := range s.Names {
				if name.IsExported() && !documented {
					pass.Reportf(name.Pos(), "exported %s %s has no doc comment", kind, name.Name)
				}
			}
		}
	}
}
