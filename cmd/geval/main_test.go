package main

import (
	"bytes"
	"strings"
	"testing"
)

// small returns fast protocol flags.
func small(extra ...string) []string {
	return append([]string{"-train", "6", "-test", "4"}, extra...)
}

func TestEvalSingleExperiment(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(small("-exp", "ud"), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"fig5-7-ud", "full classifier accuracy", "points examined"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestEvalAnnotate(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(small("-exp", "fig9", "-annotate"), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "/") || !strings.Contains(stdout.String(), "ur1") {
		t.Errorf("annotation output:\n%s", stdout.String())
	}
}

func TestEvalConfusion(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(small("-exp", "fig9", "-confusion"), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "actual\\pred") {
		t.Errorf("confusion output:\n%s", stdout.String())
	}
}

func TestEvalErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "nope"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown experiment: exit %d", code)
	}
	if code := run([]string{"-annotate", "-exp", "timing"}, &stdout, &stderr); code != 2 {
		t.Errorf("annotate wrong exp: exit %d", code)
	}
	if code := run([]string{"-confusion", "-exp", "timing"}, &stdout, &stderr); code != 2 {
		t.Errorf("confusion wrong exp: exit %d", code)
	}
	if code := run([]string{"-badflag"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit %d", code)
	}
}
