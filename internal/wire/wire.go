// Package wire is the batched binary wire format for the serving
// engine's networked ingestion path. Per-event HTTP/JSON framing would
// dwarf the ~100 ns decide path (DESIGN.md §6), so events travel as
// length-prefixed frames of batched events with per-connection session
// interning and delta-encoded timestamps. The codec is stdlib-only and
// transport-agnostic: internal/ingest serves it over net.Listener
// connections and cmd/gload replays synthetic workloads through it.
//
// # Frame layout
//
// A request frame is:
//
//	offset 0   'G' 'W'          magic
//	offset 2   0x02             format version (Version)
//	offset 3   8 bytes LE       client-send time, unix nanoseconds
//	...        uvarint          payload length (1..MaxFrameBytes)
//	...        4 bytes LE       CRC-32 (IEEE) of the payload
//	...        payload
//
// The client-send stamp is the sender's wall clock at frame encode time
// (AppendFrame stamps it; AppendFrameAt sets it explicitly), letting the
// receiver attribute end-to-end latency: ingest observes receive−send as
// wire.e2e.ingress_ns and the serving engine observes decide−send as
// wire.e2e_ns. Zero means "unstamped". The stamp is header, not payload:
// it is excluded from the CRC, and two frames with identical payloads
// but different stamps decode to identical events.
//
// Version 1 frames (no stamp) are no longer accepted: the decoder
// rejects any version byte other than Version with ErrVersion, and the
// ingest server answers with the connection-fatal FatalVersion code.
//
// and the payload is:
//
//	uvarint count               events in the frame (0..MaxBatch)
//	count × event:
//	  uvarint sid               session reference (see below)
//	  [uvarint n, n bytes]      session definition, only when sid == next
//	  1 byte                    finger
//	  1 byte                    kind (0 down, 1 move, 2 up)
//	  8 bytes LE                x coordinate, raw IEEE-754 bits
//	  8 bytes LE                y coordinate, raw IEEE-754 bits
//	  uvarint                   timestamp delta, zigzag µs vs. the
//	                            previous event on the connection
//
// Session IDs are interned per connection: the first event of a session
// carries sid == len(table) followed by the ID bytes, which appends to
// the table; every later event references the table index. Timestamps
// are signed microsecond deltas against the previous event on the same
// connection (the first event's delta is absolute, against 0), so a
// dense point stream costs 1–2 bytes per timestamp instead of 8.
//
// The encoding is canonical: minimal-length varints, definitions exactly
// at first use, no duplicate definitions, no trailing bytes. Decode
// rejects every non-canonical form, so for any frame that decodes, a
// fresh Encoder re-encodes the decoded events to the identical bytes —
// the property the fuzz test pins (FuzzDecodeFrame).
//
// # Errors
//
// Decode errors are typed: ErrTruncated (the bytes end mid-frame),
// ErrOversized (a declared length beyond MaxFrameBytes or MaxBatch),
// ErrVersion (a well-formed header carrying a version this codec does
// not speak), and ErrCorrupt (bad magic/CRC, non-minimal varint, bad
// session reference, trailing bytes, out-of-range kind). Match with
// errors.Is. After any decode error the Decoder is poisoned — the
// stream's interning state can no longer be trusted and the connection
// must be torn down; the fatal response codes (Fatal*) tell the client
// why.
//
// # Responses
//
// The server answers every request frame, in order, with one response:
//
//	0x06 ('ACK') uvarint nackCount, nackCount × (uvarint index, 1 byte code)
//
// An all-accepted frame is the 2-byte sequence {0x06, 0x00}. Each NACK
// carries the 0-based index of a refused event within the frame and a
// NackCode mapping the serving engine's typed Submit errors
// (serve.ErrBadEvent, ErrQueueFull, ErrShed, ErrClosed). A connection-
// fatal condition is answered with
//
//	0x15 ('NAK') 1 byte FatalCode
//
// after which the server closes the connection.
package wire

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"
)

// Version is the wire format version carried in every frame header.
// Version 2 added the 8-byte client-send stamp; version 1 frames are
// rejected with ErrVersion.
const Version = 2

// Limits enforced by both Encoder and Decoder. They bound the memory an
// ingest server commits to a single frame before validating it.
const (
	// MaxBatch is the maximum number of events in one frame.
	MaxBatch = 1024
	// MaxSessionLen is the maximum session-ID length in bytes; IDs must
	// be non-empty (the serving engine rejects empty session IDs anyway).
	MaxSessionLen = 256
	// MaxFrameBytes is the maximum payload length the decoder will
	// accept or the frame reader will buffer.
	MaxFrameBytes = 1 << 20
)

// Typed decode errors; match with errors.Is. The wrapping error carries
// the offending detail.
var (
	// ErrTruncated reports a frame that ends before its declared length.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrOversized reports a declared payload length above MaxFrameBytes
	// or a batch count above MaxBatch.
	ErrOversized = errors.New("wire: oversized frame")
	// ErrCorrupt reports a frame that violates the format: bad magic,
	// CRC mismatch, non-minimal varint, bad session reference or
	// duplicate definition, out-of-range kind, or trailing bytes.
	ErrCorrupt = errors.New("wire: corrupt frame")
	// ErrVersion reports a frame whose header carries a format version
	// this codec does not speak (a v1 peer, or a future version). The
	// ingest server answers it with the connection-fatal FatalVersion.
	ErrVersion = errors.New("wire: unsupported frame version")
	// errPoisoned reports use of an Encoder or Decoder after an error.
	errPoisoned = errors.New("wire: codec poisoned by a previous error")
)

// Kind is the wire encoding of a multipath event kind.
type Kind uint8

// Wire event kinds; the numeric values match multipath.EventKind.
const (
	// KindDown is a finger-down (stroke start) event.
	KindDown Kind = 0
	// KindMove is a finger-move (stroke point) event.
	KindMove Kind = 1
	// KindUp is a finger-up (stroke end) event.
	KindUp Kind = 2
)

// Event is one wire-level event. Timestamps are integer microseconds so
// the delta encoding round-trips exactly; Seconds and Micros convert to
// and from the serving engine's float-seconds domain at the boundary.
type Event struct {
	// Session is the interaction's session ID (1..MaxSessionLen bytes).
	Session string
	// Finger is the finger identifier within the session.
	Finger uint8
	// Kind is the event kind (KindDown, KindMove, KindUp).
	Kind Kind
	// X, Y are the sample coordinates; any IEEE-754 bit pattern travels
	// unchanged (the serving engine rejects non-finite values).
	X, Y float64
	// TMicros is the sample timestamp in integer microseconds.
	TMicros int64
}

// Seconds returns the event timestamp in the float seconds domain
// serve.Event.T uses.
func (ev Event) Seconds() float64 { return float64(ev.TMicros) / 1e6 }

// Micros converts a float-seconds timestamp to the integer microseconds
// the wire carries, rounding to nearest. Non-finite inputs saturate
// (the serving engine would reject the event either way, and the wire
// must carry something defined).
func Micros(t float64) int64 {
	us := math.Round(t * 1e6)
	switch {
	case math.IsNaN(us):
		return 0
	case us >= math.MaxInt64:
		return math.MaxInt64
	case us <= math.MinInt64:
		return math.MinInt64
	}
	return int64(us)
}

// Frame header constants.
const (
	magic0, magic1 = 'G', 'W'
	headerFixed    = 11 // magic + version + send stamp, before the length varint
	crcLen         = 4
)

// zigzag encodes a signed delta as an unsigned varint-friendly value.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendUvarint appends the minimal varint encoding of v.
func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst[:len(dst)], byte(v)|0x80)
		v >>= 7
	}
	return append(dst[:len(dst)], byte(v))
}

// uvarintLen returns the encoded length of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// readUvarint decodes a minimal varint from b starting at off, returning
// the value and the offset past it. A non-minimal ("overlong") encoding
// is ErrCorrupt — canonical frames have exactly one byte form per value —
// and running out of bytes is ErrTruncated.
func readUvarint(b []byte, off int) (uint64, int, error) {
	var v uint64
	var shift uint
	for i := off; i < len(b); i++ {
		c := b[i]
		if shift == 63 && c > 1 {
			return 0, 0, fmt.Errorf("%w: varint overflows uint64", ErrCorrupt)
		}
		if c < 0x80 {
			if c == 0 && i > off {
				return 0, 0, fmt.Errorf("%w: non-minimal varint", ErrCorrupt)
			}
			return v | uint64(c)<<shift, i + 1, nil
		}
		v |= uint64(c&0x7f) << shift
		shift += 7
		if shift > 63 {
			return 0, 0, fmt.Errorf("%w: varint longer than 10 bytes", ErrCorrupt)
		}
	}
	return 0, 0, fmt.Errorf("%w: varint runs off the end", ErrTruncated)
}

// Encoder encodes frames for one connection, owning the connection's
// session intern table and timestamp delta state. Not safe for
// concurrent use. After a non-nil error the Encoder is poisoned (its
// interning state may disagree with what was emitted) and every further
// call fails; errors here are programming errors — an in-range workload
// never trips them.
type Encoder struct {
	ids      map[string]uint64
	prev     int64
	payload  []byte // reused per-frame payload build buffer
	poisoned bool
}

// NewEncoder returns an Encoder with an empty intern table.
func NewEncoder() *Encoder {
	return &Encoder{ids: make(map[string]uint64)}
}

// AppendFrame appends one encoded frame carrying events to dst and
// returns the extended slice, stamping the header with the current wall
// clock as the client-send time. The events' order is the wire order
// (the timestamp delta chain threads through it). Errors (too many
// events, an out-of-range session ID or kind) poison the Encoder.
func (e *Encoder) AppendFrame(dst []byte, events []Event) ([]byte, error) {
	return e.AppendFrameAt(dst, events, time.Now().UnixNano())
}

// AppendFrameAt is AppendFrame with an explicit client-send stamp (unix
// nanoseconds; 0 means unstamped) — the canonical-re-encode entry point:
// re-encoding decoded events with the decoded frame's SentNS reproduces
// the original bytes bit for bit, and tests use fixed stamps for
// deterministic frames.
func (e *Encoder) AppendFrameAt(dst []byte, events []Event, sentNS int64) ([]byte, error) {
	if e.poisoned {
		return dst, errPoisoned
	}
	if len(events) > MaxBatch {
		e.poisoned = true
		return dst, fmt.Errorf("%w: %d events exceeds MaxBatch %d", ErrOversized, len(events), MaxBatch)
	}
	p := appendUvarint(e.payload[:0], uint64(len(events)))
	for i := range events {
		ev := &events[i]
		if len(ev.Session) == 0 || len(ev.Session) > MaxSessionLen {
			e.poisoned = true
			return dst, fmt.Errorf("%w: session ID length %d outside 1..%d", ErrCorrupt, len(ev.Session), MaxSessionLen)
		}
		if ev.Kind > KindUp {
			e.poisoned = true
			return dst, fmt.Errorf("%w: kind %d out of range", ErrCorrupt, ev.Kind)
		}
		sid, ok := e.ids[ev.Session]
		if !ok {
			sid = uint64(len(e.ids))
			e.ids[ev.Session] = sid
			p = appendUvarint(p, sid)
			p = appendUvarint(p, uint64(len(ev.Session)))
			p = append(p[:len(p)], ev.Session...)
		} else {
			p = appendUvarint(p, sid)
		}
		p = append(p[:len(p)], ev.Finger, byte(ev.Kind))
		p = appendU64(p, math.Float64bits(ev.X))
		p = appendU64(p, math.Float64bits(ev.Y))
		p = appendUvarint(p, zigzag(ev.TMicros-e.prev))
		e.prev = ev.TMicros
	}
	e.payload = p
	dst = append(dst[:len(dst)], magic0, magic1, Version)
	dst = appendU64(dst, uint64(sentNS))
	dst = appendUvarint(dst, uint64(len(p)))
	dst = appendU32(dst, crc32.ChecksumIEEE(p))
	return append(dst[:len(dst)], p...), nil
}

// appendU64 appends v little-endian.
func appendU64(dst []byte, v uint64) []byte {
	return append(dst[:len(dst)],
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// appendU32 appends v little-endian.
func appendU32(dst []byte, v uint32) []byte {
	return append(dst[:len(dst)], byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// Decoder decodes frames from one connection, owning the connection's
// session intern table and timestamp delta state (the mirror of the
// peer's Encoder). Not safe for concurrent use. After any error the
// Decoder is poisoned and every further Decode fails — the caller must
// tear the connection down (see the package comment on fatal responses).
type Decoder struct {
	table    []string
	prev     int64
	sent     int64
	poisoned bool
}

// NewDecoder returns a Decoder with an empty intern table.
func NewDecoder() *Decoder { return &Decoder{} }

// Sessions returns how many session IDs the decoder has interned.
func (d *Decoder) Sessions() int { return len(d.table) }

// SentNS returns the client-send stamp (unix nanoseconds) of the last
// frame DecodeFrame accepted; 0 before the first frame or when the
// sender left it unstamped. Payload-only Decode calls do not update it —
// on streaming connections the FrameReader carries the stamp instead.
func (d *Decoder) SentNS() int64 { return d.sent }

// Decode decodes one frame payload (the bytes a FrameReader returns, or
// the payload section of DecodeFrame's input), appending the events to
// dst and returning the extended slice. dst's backing array is reused —
// steady-state decoding of warm sessions performs no per-event
// allocation (gated by TestDecodeZeroAlloc). The payload must be exactly
// one canonical batch: trailing bytes, non-minimal varints, bad session
// references, and out-of-range kinds are ErrCorrupt.
//
//glint:hotpath
func (d *Decoder) Decode(payload []byte, dst []Event) ([]Event, error) {
	if d.poisoned {
		return dst, errPoisoned
	}
	count, off, err := readUvarint(payload, 0)
	if err != nil {
		d.poisoned = true
		return dst, err
	}
	if count > MaxBatch {
		d.poisoned = true
		return dst, fmt.Errorf("%w: batch count %d exceeds MaxBatch %d", ErrOversized, count, MaxBatch)
	}
	for i := uint64(0); i < count; i++ {
		var ev Event
		ev, off, err = d.event(payload, off)
		if err != nil {
			d.poisoned = true
			return dst, err
		}
		dst = append(dst[:len(dst)], ev)
	}
	if off != len(payload) {
		d.poisoned = true
		return dst, fmt.Errorf("%w: %d trailing bytes after batch", ErrCorrupt, len(payload)-off)
	}
	return dst, nil
}

// event decodes one event starting at off and returns it with the new
// offset. Interning state advances as definitions are seen.
//
//glint:hotpath
func (d *Decoder) event(payload []byte, off int) (Event, int, error) {
	var ev Event
	sid, off, err := readUvarint(payload, off)
	if err != nil {
		return ev, 0, err
	}
	switch {
	case sid < uint64(len(d.table)):
		ev.Session = d.table[sid]
	case sid == uint64(len(d.table)):
		ev.Session, off, err = d.define(payload, off)
		if err != nil {
			return ev, 0, err
		}
	default:
		return ev, 0, fmt.Errorf("%w: session reference %d skips table size %d", ErrCorrupt, sid, len(d.table))
	}
	if len(payload)-off < 2+8+8 {
		return ev, 0, fmt.Errorf("%w: event body runs off the end", ErrTruncated)
	}
	ev.Finger = payload[off]
	ev.Kind = Kind(payload[off+1])
	if ev.Kind > KindUp {
		return ev, 0, fmt.Errorf("%w: kind %d out of range", ErrCorrupt, ev.Kind)
	}
	ev.X = math.Float64frombits(readU64(payload, off+2))
	ev.Y = math.Float64frombits(readU64(payload, off+10))
	off += 18
	dt, off, err := readUvarint(payload, off)
	if err != nil {
		return ev, 0, err
	}
	ev.TMicros = d.prev + unzigzag(dt)
	d.prev = ev.TMicros
	return ev, off, nil
}

// define decodes a session definition (length-prefixed ID bytes),
// interns it, and returns the string. Runs once per session per
// connection; the steady-state event path only takes table references.
//
//glint:coldpath interning runs once per session per connection, not per event
func (d *Decoder) define(payload []byte, off int) (string, int, error) {
	n, off, err := readUvarint(payload, off)
	if err != nil {
		return "", 0, err
	}
	if n == 0 || n > MaxSessionLen {
		return "", 0, fmt.Errorf("%w: session ID length %d outside 1..%d", ErrCorrupt, n, MaxSessionLen)
	}
	if uint64(len(payload)-off) < n {
		return "", 0, fmt.Errorf("%w: session ID runs off the end", ErrTruncated)
	}
	s := string(payload[off : off+int(n)])
	for _, prev := range d.table {
		if prev == s {
			return "", 0, fmt.Errorf("%w: duplicate session definition %q", ErrCorrupt, s)
		}
	}
	d.table = append(d.table, s)
	return s, off + int(n), nil
}

// readU64 reads 8 little-endian bytes at off; the caller has bounds-
// checked.
func readU64(b []byte, off int) uint64 {
	_ = b[off+7]
	return uint64(b[off]) | uint64(b[off+1])<<8 | uint64(b[off+2])<<16 | uint64(b[off+3])<<24 |
		uint64(b[off+4])<<32 | uint64(b[off+5])<<40 | uint64(b[off+6])<<48 | uint64(b[off+7])<<56
}

// DecodeFrame decodes one complete frame (header, CRC, payload) from the
// front of b, appending the events to dst. It returns the extended
// slice and the number of bytes consumed. Used by in-memory consumers
// (the fuzz harness, tests); streaming connections use FrameReader +
// Decode.
func (d *Decoder) DecodeFrame(b []byte, dst []Event) ([]Event, int, error) {
	if d.poisoned {
		return dst, 0, errPoisoned
	}
	payload, sent, n, err := splitFrame(b)
	if err != nil {
		d.poisoned = true
		return dst, 0, err
	}
	d.sent = sent
	dst, err = d.Decode(payload, dst)
	return dst, n, err
}

// splitFrame validates the header/CRC at the front of b and returns the
// payload, the client-send stamp, and the total frame length.
func splitFrame(b []byte) (payload []byte, sent int64, n int, err error) {
	if len(b) < 3 {
		return nil, 0, 0, fmt.Errorf("%w: %d-byte header", ErrTruncated, len(b))
	}
	if b[0] != magic0 || b[1] != magic1 {
		return nil, 0, 0, fmt.Errorf("%w: bad magic %#02x%02x", ErrCorrupt, b[0], b[1])
	}
	if b[2] != Version {
		return nil, 0, 0, fmt.Errorf("%w: frame version %d, this codec speaks %d", ErrVersion, b[2], Version)
	}
	if len(b) < headerFixed {
		return nil, 0, 0, fmt.Errorf("%w: header ends before the send stamp", ErrTruncated)
	}
	sent = int64(readU64(b, 3))
	plen, off, err := readUvarint(b, headerFixed)
	if err != nil {
		return nil, 0, 0, err
	}
	if plen == 0 {
		return nil, 0, 0, fmt.Errorf("%w: zero-length payload", ErrCorrupt)
	}
	if plen > MaxFrameBytes {
		return nil, 0, 0, fmt.Errorf("%w: payload length %d exceeds %d", ErrOversized, plen, MaxFrameBytes)
	}
	if uint64(len(b)-off) < crcLen+plen {
		return nil, 0, 0, fmt.Errorf("%w: declared %d payload bytes, have %d", ErrTruncated, plen, len(b)-off-crcLen)
	}
	want := uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24
	off += crcLen
	payload = b[off : off+int(plen)]
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, 0, 0, fmt.Errorf("%w: CRC mismatch (declared %#08x, computed %#08x)", ErrCorrupt, want, got)
	}
	return payload, sent, off + int(plen), nil
}

// EncodedFrameLen returns the total frame length for a payload of plen
// bytes — the inverse bookkeeping DecodeFrame's consumed-byte count
// reports.
func EncodedFrameLen(plen int) int {
	return headerFixed + uvarintLen(uint64(plen)) + crcLen + plen
}

// ByteSource is the reader a FrameReader consumes: buffered byte-at-a-
// time access for varints plus bulk reads for payloads. *bufio.Reader
// implements it.
type ByteSource interface {
	io.Reader
	io.ByteReader
}

// FrameReader reads length-prefixed frames off a connection, reusing one
// payload buffer across frames. Not safe for concurrent use.
type FrameReader struct {
	r    ByteSource
	buf  []byte
	sent int64
}

// NewFrameReader returns a FrameReader over r (typically a
// *bufio.Reader wrapping the connection).
func NewFrameReader(r ByteSource) *FrameReader {
	return &FrameReader{r: r, buf: make([]byte, 0, 4096)}
}

// SentNS returns the client-send stamp (unix nanoseconds) from the
// header of the last frame Next returned; 0 before the first frame or
// when the sender left it unstamped. The ingest server reads it to
// attribute end-to-end latency per frame.
func (fr *FrameReader) SentNS() int64 { return fr.sent }

// Next reads one frame and returns its CRC-verified payload, valid only
// until the next call. io.EOF at a frame boundary is a clean end of
// stream; bytes ending mid-frame are ErrTruncated. Oversized declared
// lengths are rejected (ErrOversized) before any payload is buffered.
func (fr *FrameReader) Next() ([]byte, error) {
	var hdr [headerFixed]byte
	if _, err := io.ReadFull(fr.r, hdr[:3]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if hdr[0] != magic0 || hdr[1] != magic1 {
		return nil, fmt.Errorf("%w: bad magic %#02x%02x", ErrCorrupt, hdr[0], hdr[1])
	}
	if hdr[2] != Version {
		return nil, fmt.Errorf("%w: frame version %d, this codec speaks %d", ErrVersion, hdr[2], Version)
	}
	if _, err := io.ReadFull(fr.r, hdr[3:]); err != nil {
		return nil, fmt.Errorf("%w: send stamp: %v", ErrTruncated, err)
	}
	fr.sent = int64(readU64(hdr[:], 3))
	plen, err := readStreamUvarint(fr.r)
	if err != nil {
		return nil, err
	}
	if plen == 0 {
		return nil, fmt.Errorf("%w: zero-length payload", ErrCorrupt)
	}
	if plen > MaxFrameBytes {
		return nil, fmt.Errorf("%w: payload length %d exceeds %d", ErrOversized, plen, MaxFrameBytes)
	}
	var crc [crcLen]byte
	if _, err := io.ReadFull(fr.r, crc[:]); err != nil {
		return nil, fmt.Errorf("%w: CRC: %v", ErrTruncated, err)
	}
	want := uint32(crc[0]) | uint32(crc[1])<<8 | uint32(crc[2])<<16 | uint32(crc[3])<<24
	if uint64(cap(fr.buf)) < plen {
		fr.buf = make([]byte, plen)
	}
	payload := fr.buf[:plen]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrTruncated, err)
	}
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("%w: CRC mismatch (declared %#08x, computed %#08x)", ErrCorrupt, want, got)
	}
	return payload, nil
}

// readStreamUvarint reads a minimal varint byte-at-a-time.
func readStreamUvarint(r io.ByteReader) (uint64, error) {
	var v uint64
	var shift uint
	for i := 0; ; i++ {
		c, err := r.ReadByte()
		if err != nil {
			return 0, fmt.Errorf("%w: length varint: %v", ErrTruncated, err)
		}
		if shift == 63 && c > 1 {
			return 0, fmt.Errorf("%w: varint overflows uint64", ErrCorrupt)
		}
		if c < 0x80 {
			if c == 0 && i > 0 {
				return 0, fmt.Errorf("%w: non-minimal varint", ErrCorrupt)
			}
			return v | uint64(c)<<shift, nil
		}
		v |= uint64(c&0x7f) << shift
		shift += 7
		if shift > 63 {
			return 0, fmt.Errorf("%w: varint longer than 10 bytes", ErrCorrupt)
		}
	}
}
