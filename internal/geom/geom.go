// Package geom provides the planar geometry primitives used throughout the
// gesture recognizer: points, timestamped points, rectangles (bounding
// boxes), and paths. Coordinates follow the paper's screen convention:
// x grows rightward, y grows *downward*. An "up" stroke therefore has a
// negative y delta; the synthetic generators and GDP both use this
// convention consistently.
package geom

import (
	"math"

	"repro/internal/mathx"
)

// Point is a position in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product p . q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z component of the cross product p x q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// DistSq returns the squared Euclidean distance between p and q. It is the
// form used on the feature-extraction hot path, where the square root of
// Dist would be wasted work.
func (p Point) DistSq(q Point) float64 {
	return mathx.Sq(p.X-q.X) + mathx.Sq(p.Y-q.Y)
}

// Angle returns the direction of p viewed as a vector, in radians in
// (-pi, pi]. The zero vector has angle 0 by convention.
func (p Point) Angle() float64 {
	if p.X == 0 && p.Y == 0 {
		return 0
	}
	return math.Atan2(p.Y, p.X)
}

// Rotate returns p rotated by angle radians about the origin.
func (p Point) Rotate(angle float64) Point {
	s, c := math.Sincos(angle)
	return Point{p.X*c - p.Y*s, p.X*s + p.Y*c}
}

// RotateAround returns p rotated by angle radians about center.
func (p Point) RotateAround(center Point, angle float64) Point {
	return p.Sub(center).Rotate(angle).Add(center)
}

// Lerp returns the point a fraction t of the way from p to q. t is not
// clamped; t outside [0,1] extrapolates.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// TimedPoint is a mouse sample: a position plus the time, in seconds, at
// which it arrived. This matches the paper's g_p = (x_p, y_p, t_p).
type TimedPoint struct {
	X, Y float64
	T    float64
}

// TPt is shorthand for TimedPoint{x, y, t}.
func TPt(x, y, t float64) TimedPoint { return TimedPoint{x, y, t} }

// Point returns the spatial component of the sample.
func (tp TimedPoint) Point() Point { return Point{tp.X, tp.Y} }

// Rect is an axis-aligned rectangle, most often a bounding box. A Rect is
// valid when MinX <= MaxX and MinY <= MaxY; EmptyRect returns the canonical
// invalid rectangle used as the identity for Union/AddPoint.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyRect returns the empty rectangle: the identity element for Union and
// AddPoint. Empty() reports true for it.
func EmptyRect() Rect {
	return Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// RectFromPoints returns the smallest rectangle containing both points.
func RectFromPoints(a, b Point) Rect {
	return Rect{
		MinX: math.Min(a.X, b.X), MinY: math.Min(a.Y, b.Y),
		MaxX: math.Max(a.X, b.X), MaxY: math.Max(a.Y, b.Y),
	}
}

// Empty reports whether r contains no points.
func (r Rect) Empty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// Width returns the horizontal extent of r, or 0 if r is empty.
func (r Rect) Width() float64 {
	if r.Empty() {
		return 0
	}
	return r.MaxX - r.MinX
}

// Height returns the vertical extent of r, or 0 if r is empty.
func (r Rect) Height() float64 {
	if r.Empty() {
		return 0
	}
	return r.MaxY - r.MinY
}

// Diagonal returns the length of r's diagonal (feature f3 in the paper).
func (r Rect) Diagonal() float64 { return math.Hypot(r.Width(), r.Height()) }

// DiagonalAngle returns the angle of r's diagonal (feature f4), measured as
// atan2(height, width); it lies in [0, pi/2] for non-empty rectangles.
func (r Rect) DiagonalAngle() float64 {
	if r.Empty() {
		return 0
	}
	return math.Atan2(r.Height(), r.Width())
}

// Center returns the midpoint of r. Center of an empty Rect is undefined
// but returns a finite-free value rather than panicking.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// AddPoint returns r expanded to contain p.
func (r Rect) AddPoint(p Point) Rect {
	return Rect{
		MinX: math.Min(r.MinX, p.X), MinY: math.Min(r.MinY, p.Y),
		MaxX: math.Max(r.MaxX, p.X), MaxY: math.Max(r.MaxY, p.Y),
	}
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, s.MinX), MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX), MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return !r.Empty() &&
		p.X >= r.MinX && p.X <= r.MaxX &&
		p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether s lies entirely inside r. An empty s is
// contained in any non-empty r.
func (r Rect) ContainsRect(s Rect) bool {
	if r.Empty() {
		return false
	}
	if s.Empty() {
		return true
	}
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX &&
		s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	if r.Empty() || s.Empty() {
		return false
	}
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX &&
		r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Inset returns r shrunk by d on every side (or grown, for negative d).
// Shrinking past the midpoint yields an empty rectangle.
func (r Rect) Inset(d float64) Rect {
	return Rect{r.MinX + d, r.MinY + d, r.MaxX - d, r.MaxY - d}
}

// Translate returns r shifted by (dx, dy).
func (r Rect) Translate(dx, dy float64) Rect {
	return Rect{r.MinX + dx, r.MinY + dy, r.MaxX + dx, r.MaxY + dy}
}
