// Package raster implements a small software canvas used as GRANDMA's
// frame buffer in this headless reproduction. Views paint glyphs into a
// byte grid; tests and the cmd tools observe rendering through ASCII
// snapshots. It supports the primitives GDP draws: lines (Bresenham),
// axis-aligned and rotated rectangles, midpoint ellipses, dotted gesture
// ink, and text labels.
package raster

import (
	"math"
	"strings"

	"repro/internal/geom"
)

// Canvas is a W x H grid of glyph bytes. The zero byte renders as the
// background character. Construct with NewCanvas.
type Canvas struct {
	W, H int
	pix  []byte
}

// Background is the glyph used for unset cells in String output.
const Background = '.'

// NewCanvas returns a cleared canvas. Dimensions must be positive.
func NewCanvas(w, h int) *Canvas {
	if w <= 0 || h <= 0 {
		panic("raster: non-positive canvas dimensions")
	}
	return &Canvas{W: w, H: h, pix: make([]byte, w*h)}
}

// Clear resets every cell.
func (c *Canvas) Clear() {
	for i := range c.pix {
		c.pix[i] = 0
	}
}

// Set paints glyph ch at integer cell (x, y). Out-of-bounds paints are
// clipped silently — shapes may legitimately extend past the canvas.
func (c *Canvas) Set(x, y int, ch byte) {
	if x < 0 || y < 0 || x >= c.W || y >= c.H {
		return
	}
	c.pix[y*c.W+x] = ch
}

// At returns the glyph at (x, y), or 0 when out of bounds or unset.
func (c *Canvas) At(x, y int) byte {
	if x < 0 || y < 0 || x >= c.W || y >= c.H {
		return 0
	}
	return c.pix[y*c.W+x]
}

// SetF paints at a float position, rounding to the nearest cell.
func (c *Canvas) SetF(x, y float64, ch byte) {
	c.Set(int(math.Round(x)), int(math.Round(y)), ch)
}

// Line draws a straight line with Bresenham's algorithm.
func (c *Canvas) Line(x0, y0, x1, y1 float64, ch byte) {
	ix0, iy0 := int(math.Round(x0)), int(math.Round(y0))
	ix1, iy1 := int(math.Round(x1)), int(math.Round(y1))
	dx := abs(ix1 - ix0)
	dy := -abs(iy1 - iy0)
	sx, sy := 1, 1
	if ix0 > ix1 {
		sx = -1
	}
	if iy0 > iy1 {
		sy = -1
	}
	err := dx + dy
	for {
		c.Set(ix0, iy0, ch)
		if ix0 == ix1 && iy0 == iy1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			ix0 += sx
		}
		if e2 <= dx {
			err += dx
			iy0 += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Rect strokes an axis-aligned rectangle outline.
func (c *Canvas) Rect(r geom.Rect, ch byte) {
	if r.Empty() {
		return
	}
	c.Line(r.MinX, r.MinY, r.MaxX, r.MinY, ch)
	c.Line(r.MaxX, r.MinY, r.MaxX, r.MaxY, ch)
	c.Line(r.MaxX, r.MaxY, r.MinX, r.MaxY, ch)
	c.Line(r.MinX, r.MaxY, r.MinX, r.MinY, ch)
}

// Polygon strokes a closed polygon through the given vertices.
func (c *Canvas) Polygon(pts []geom.Point, ch byte) {
	if len(pts) < 2 {
		return
	}
	for i := 1; i < len(pts); i++ {
		c.Line(pts[i-1].X, pts[i-1].Y, pts[i].X, pts[i].Y, ch)
	}
	c.Line(pts[len(pts)-1].X, pts[len(pts)-1].Y, pts[0].X, pts[0].Y, ch)
}

// Ellipse strokes an axis-aligned ellipse centered at (cx, cy) with radii
// rx and ry, by sampling the parametric form densely enough for the raster
// resolution.
func (c *Canvas) Ellipse(cx, cy, rx, ry float64, ch byte) {
	if rx < 0 || ry < 0 {
		return
	}
	steps := int(8 * (rx + ry))
	if steps < 16 {
		steps = 16
	}
	for i := 0; i <= steps; i++ {
		a := 2 * math.Pi * float64(i) / float64(steps)
		c.SetF(cx+rx*math.Cos(a), cy+ry*math.Sin(a), ch)
	}
}

// Path strokes a polyline through timed points, connecting consecutive
// samples. Used for gesture ink.
func (c *Canvas) Path(p geom.Path, ch byte) {
	for i := 1; i < len(p); i++ {
		c.Line(p[i-1].X, p[i-1].Y, p[i].X, p[i].Y, ch)
	}
	if len(p) == 1 {
		c.SetF(p[0].X, p[0].Y, ch)
	}
}

// Dotted marks every sample of a path without connecting them — the
// paper's figures draw gestures "with dotted lines".
func (c *Canvas) Dotted(p geom.Path, ch byte) {
	for _, tp := range p {
		c.SetF(tp.X, tp.Y, ch)
	}
}

// Text writes a string horizontally starting at cell (x, y), one glyph per
// cell, clipped at the canvas edge.
func (c *Canvas) Text(x, y int, s string) {
	for i := 0; i < len(s); i++ {
		c.Set(x+i, y, s[i])
	}
}

// Count returns the number of cells painted with glyph ch.
func (c *Canvas) Count(ch byte) int {
	n := 0
	for _, b := range c.pix {
		if b == ch {
			n++
		}
	}
	return n
}

// NonEmpty returns the number of painted (non-zero) cells.
func (c *Canvas) NonEmpty() int {
	n := 0
	for _, b := range c.pix {
		if b != 0 {
			n++
		}
	}
	return n
}

// Downsample returns a reduced canvas in which each output cell covers an
// sx-by-sy block of this canvas and takes the block's first painted glyph
// (scanning row-major). Terminal cells are roughly twice as tall as wide,
// so sy is typically about 2*sx. Factors must be positive.
func (c *Canvas) Downsample(sx, sy int) *Canvas {
	if sx <= 0 || sy <= 0 {
		panic("raster: non-positive downsample factors")
	}
	w := (c.W + sx - 1) / sx
	h := (c.H + sy - 1) / sy
	out := NewCanvas(w, h)
	for oy := 0; oy < h; oy++ {
		for ox := 0; ox < w; ox++ {
			var glyph byte
		block:
			for y := oy * sy; y < (oy+1)*sy && y < c.H; y++ {
				for x := ox * sx; x < (ox+1)*sx && x < c.W; x++ {
					if b := c.pix[y*c.W+x]; b != 0 {
						glyph = b
						break block
					}
				}
			}
			if glyph != 0 {
				out.Set(ox, oy, glyph)
			}
		}
	}
	return out
}

// String renders the canvas as H lines of W characters.
func (c *Canvas) String() string {
	var sb strings.Builder
	sb.Grow((c.W + 1) * c.H)
	for y := 0; y < c.H; y++ {
		for x := 0; x < c.W; x++ {
			b := c.pix[y*c.W+x]
			if b == 0 {
				b = Background
			}
			sb.WriteByte(b)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
