package multipath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/mathx"
)

func TestSolveMapsFingersExactly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pt := func() geom.Point {
			return geom.Pt(rng.Float64()*200-100, rng.Float64()*200-100)
		}
		a0, b0, a1, b1 := pt(), pt(), pt(), pt()
		if a0.Dist(b0) < 1e-3 {
			return true // coincident-finger case tested separately
		}
		tr := Solve(a0, b0, a1, b1)
		ga := tr.Apply(a0)
		gb := tr.Apply(b0)
		return mathx.ApproxEqual(ga.X, a1.X, 1e-6) && mathx.ApproxEqual(ga.Y, a1.Y, 1e-6) &&
			mathx.ApproxEqual(gb.X, b1.X, 1e-6) && mathx.ApproxEqual(gb.Y, b1.Y, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSolvePureTranslation(t *testing.T) {
	tr := Solve(geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, 5), geom.Pt(15, 5))
	if !mathx.ApproxEqual(tr.Rotate, 0, 1e-12) || !mathx.ApproxEqual(tr.Scale, 1, 1e-12) {
		t.Errorf("rotation/scale: %+v", tr)
	}
	if tr.Translate != geom.Pt(5, 5) {
		t.Errorf("translate: %+v", tr)
	}
}

func TestSolvePureRotation(t *testing.T) {
	// Fingers rotate 90 degrees about their midpoint (5, 0).
	tr := Solve(geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, -5), geom.Pt(5, 5))
	if !mathx.ApproxEqual(tr.Rotate, math.Pi/2, 1e-9) {
		t.Errorf("rotate = %v", tr.Rotate)
	}
	if !mathx.ApproxEqual(tr.Scale, 1, 1e-9) {
		t.Errorf("scale = %v", tr.Scale)
	}
	if tr.Translate.Norm() > 1e-9 {
		t.Errorf("translate = %v", tr.Translate)
	}
}

func TestSolvePureScale(t *testing.T) {
	tr := Solve(geom.Pt(-5, 0), geom.Pt(5, 0), geom.Pt(-10, 0), geom.Pt(10, 0))
	if !mathx.ApproxEqual(tr.Scale, 2, 1e-12) || !mathx.ApproxEqual(tr.Rotate, 0, 1e-12) {
		t.Errorf("%+v", tr)
	}
}

func TestSolveCoincidentFingers(t *testing.T) {
	tr := Solve(geom.Pt(1, 1), geom.Pt(1, 1), geom.Pt(4, 5), geom.Pt(4, 5))
	if tr.Scale != 1 || tr.Rotate != 0 {
		t.Errorf("%+v", tr)
	}
	if tr.Translate != geom.Pt(3, 4) {
		t.Errorf("translate = %v", tr.Translate)
	}
}

func TestTransformIdentity(t *testing.T) {
	if !(Transform{Scale: 1}).Identity() {
		t.Error("identity not detected")
	}
	if (Transform{Scale: 1, Rotate: 0.1}).Identity() {
		t.Error("rotation considered identity")
	}
}

// stubShape implements Transformable for tests.
type stubShape struct {
	pts []geom.Point
}

func (s *stubShape) Translate(dx, dy float64) {
	for i := range s.pts {
		s.pts[i] = s.pts[i].Add(geom.Pt(dx, dy))
	}
}

func (s *stubShape) RotateScale(center geom.Point, angle, scale float64) {
	for i := range s.pts {
		s.pts[i] = s.pts[i].Sub(center).Rotate(angle).Scale(scale).Add(center)
	}
}

func TestApplyToMatchesApply(t *testing.T) {
	sh := &stubShape{pts: []geom.Point{{X: 1, Y: 2}, {X: -3, Y: 4}, {X: 0, Y: 0}}}
	want := make([]geom.Point, len(sh.pts))
	tr := Solve(geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(2, 3), geom.Pt(5, 12))
	for i, p := range sh.pts {
		want[i] = tr.Apply(p)
	}
	tr.ApplyTo(sh)
	for i := range want {
		if !mathx.ApproxEqual(sh.pts[i].X, want[i].X, 1e-9) ||
			!mathx.ApproxEqual(sh.pts[i].Y, want[i].Y, 1e-9) {
			t.Fatalf("point %d: %v != %v", i, sh.pts[i], want[i])
		}
	}
}

func TestTrackerComposesToTotalTransform(t *testing.T) {
	// Following a pair of fingers step by step must move a shape to the
	// same place as the one-shot transform between the end configurations.
	steps := 12
	a0, b0 := geom.Pt(0, 0), geom.Pt(20, 0)
	a1, b1 := geom.Pt(30, 10), geom.Pt(30, 38) // translate+rotate+scale

	tracked := &stubShape{pts: []geom.Point{{X: 5, Y: 5}, {X: 10, Y: -5}}}
	oneShot := &stubShape{pts: []geom.Point{{X: 5, Y: 5}, {X: 10, Y: -5}}}

	tr := NewTransformTracker(a0, b0)
	for i := 1; i <= steps; i++ {
		f := float64(i) / float64(steps)
		// Interpolate fingers along straight paths; rotation emerges from
		// the changing segment orientation.
		a := a0.Lerp(a1, f)
		b := b0.Lerp(b1, f)
		tr.Update(a, b).ApplyTo(tracked)
	}
	Solve(a0, b0, a1, b1).ApplyTo(oneShot)
	for i := range tracked.pts {
		if tracked.pts[i].Dist(oneShot.pts[i]) > 1e-6 {
			t.Fatalf("point %d: incremental %v vs one-shot %v", i, tracked.pts[i], oneShot.pts[i])
		}
	}
}
