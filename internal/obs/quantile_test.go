package obs_test

import (
	"testing"

	"repro/internal/obs"
)

// These tests pin the HistogramSnap.Quantile estimator at its edges —
// the satellite contract from ISSUE 9. The estimator interpolates
// linearly inside the bucket containing the rank and clamps to the
// observed min/max, so each case below documents exactly what an
// operator reading p-lines in the text report gets.

// TestQuantileEmpty: an empty histogram answers 0 for every q — there
// is no distribution to estimate, and 0 (not NaN) keeps downstream
// arithmetic and JSON encoding safe.
func TestQuantileEmpty(t *testing.T) {
	h := obs.New().Histogram("h", obs.LatencyBuckets())
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}
	var nilH *obs.Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil Quantile = %g, want 0", got)
	}
}

// TestQuantileExtremes: q<=0 returns the observed minimum and q>=1 the
// observed maximum — exact values, not bucket boundaries, because the
// histogram tracks true extremes alongside the buckets.
func TestQuantileExtremes(t *testing.T) {
	h := obs.New().Histogram("h", []float64{10, 100, 1000})
	for _, v := range []float64{7, 42, 730} {
		h.Observe(v)
	}
	cases := []struct{ q, want float64 }{
		{-0.5, 7}, {0, 7}, // clamp below and at zero → min
		{1, 730}, {1.5, 730}, // at and above one → max
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

// TestQuantileSingleBucket: when every observation lands in one bucket,
// interpolation spans [min, max] of the observations (the bucket
// boundaries are clamped to the observed extremes), so estimates stay
// inside what was actually seen.
func TestQuantileSingleBucket(t *testing.T) {
	h := obs.New().Histogram("h", []float64{10, 100, 1000})
	// Four observations, all in (10, 100].
	for _, v := range []float64{20, 40, 60, 80} {
		h.Observe(v)
	}
	for _, q := range []float64{0.25, 0.5, 0.75, 0.99} {
		got := h.Quantile(q)
		if got < 20 || got > 80 {
			t.Errorf("Quantile(%g) = %g, outside observed [20, 80]", q, got)
		}
	}
	// Midpoint check: rank 2 of 4 falls halfway through the clamped
	// span [20, 80] → 50.
	if got := h.Quantile(0.5); got != 50 {
		t.Errorf("Quantile(0.5) = %g, want 50 (linear midpoint of clamped span)", got)
	}
}

// TestQuantileOverflowBucket: counts concentrated beyond the last
// boundary interpolate across [observed min, observed max] — the
// overflow bucket has no boundaries of its own, so both ends clamp to
// the true extremes and estimates never leave observed reality.
func TestQuantileOverflowBucket(t *testing.T) {
	h := obs.New().Histogram("h", []float64{10, 100})
	for _, v := range []float64{200, 400, 600, 800} {
		h.Observe(v)
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		got := h.Quantile(q)
		if got < 200 || got > 800 {
			t.Errorf("Quantile(%g) = %g, outside observed [200, 800]", q, got)
		}
	}
	if got := h.Quantile(1); got != 800 {
		t.Errorf("Quantile(1) = %g, want observed max 800", got)
	}
	// All mass past the last bound: p50 = rank 2 of 4 across the
	// clamped span [200, 800] → its midpoint.
	if got := h.Quantile(0.5); got != 500 {
		t.Errorf("Quantile(0.5) = %g, want 500 (midpoint of [200, 800])", got)
	}
}

// TestQuantileSingleObservation: one observation makes every quantile
// that exact value (min == max collapses the interpolation span).
func TestQuantileSingleObservation(t *testing.T) {
	h := obs.New().Histogram("h", []float64{10, 100})
	h.Observe(42)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 42 {
			t.Errorf("Quantile(%g) = %g, want 42", q, got)
		}
	}
}
