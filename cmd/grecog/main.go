// Command grecog classifies a JSON gesture set with a trained recognizer
// and reports per-gesture results plus an accuracy summary. With an eager
// recognizer it also reports when, within each gesture, recognition fired —
// the per-example annotation of the paper's figures 9 and 10.
//
// Usage:
//
//	grecog -rec recognizer.json -in test.json [-eager] [-v]
package main

import "os"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
