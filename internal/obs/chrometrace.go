package obs

import (
	"encoding/json"
	"io"
	"net/http"
)

// chromeEvent is one Chrome Trace Event Format entry ("X" = complete
// event). Timestamps and durations are in microseconds, the format's
// unit; pid/tid place the event on a track — one tid per trace root, so
// each gesture renders as its own causally-nested row in Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the JSON-object flavor of the trace format, the one
// Perfetto and chrome://tracing both accept.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders every span section of the snapshot as a
// Chrome Trace Event Format JSON document, loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing. Each span becomes one complete
// ("X") event; the span's trace root is used as the tid, so every
// gesture occupies its own track and its sub-spans nest inside it by
// time containment. Span IDs, parent links, and typed attributes are
// carried in args.
func (s Snapshot) WriteChromeTrace(w io.Writer) error {
	doc := chromeDoc{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for _, sec := range s.Spans {
		for _, r := range sec.Spans {
			ev := chromeEvent{
				Name: r.Name,
				Cat:  sec.Name,
				Ph:   "X",
				Ts:   float64(r.Start) / 1e3,
				Dur:  float64(r.End-r.Start) / 1e3,
				Pid:  1,
				Tid:  r.Root,
				Args: map[string]any{"id": r.ID},
			}
			if r.Parent != 0 {
				ev.Args["parent"] = r.Parent
			}
			for _, a := range r.Attrs {
				switch a.Kind {
				case AttrInt:
					ev.Args[a.Key] = a.Int
				case AttrFloat:
					ev.Args[a.Key] = a.Float
				default:
					ev.Args[a.Key] = a.Str
				}
			}
			doc.TraceEvents = append(doc.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// ChromeTraceHandler returns an http.Handler serving the registry's
// current spans in Chrome Trace Event Format — cmd/gserve mounts it at
// /debug/trace. Safe with a nil registry (serves an empty trace).
func ChromeTraceHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		// Encoding errors mean the client went away; nothing to do.
		_ = r.Snapshot().WriteChromeTrace(w)
	})
}
