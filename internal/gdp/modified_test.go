package gdp

import (
	"math"
	"sync"
	"testing"

	"repro/internal/eager"
	"repro/internal/geom"
	"repro/internal/grandma"
	"repro/internal/mathx"
	"repro/internal/synth"
)

var (
	modOnce sync.Once
	modRec  *eager.Recognizer
	modErr  error
)

// modifiedRecognizer trains a recognizer whose rect class includes
// multiple orientations — the paper: "For this to work, the rectangle
// gesture was trained in multiple orientations."
func modifiedRecognizer(t *testing.T) *eager.Recognizer {
	t.Helper()
	modOnce.Do(func() {
		classes := synth.GDPClasses()
		var rect synth.Class
		rest := make([]synth.Class, 0, len(classes))
		for _, c := range classes {
			if c.Name == "rect" {
				rect = c
				continue
			}
			rest = append(rest, c)
		}
		gen := synth.NewGenerator(synth.DefaultParams(17))
		set, _ := gen.Set("mod-train", rest, 12)
		// Rect in four orientations, sharing one class label.
		for _, angle := range []float64{0, math.Pi / 6, math.Pi / 3, -math.Pi / 6} {
			rc := synth.RotatedClass(rect, angle)
			for i := 0; i < 6; i++ {
				s := gen.Sample(rc)
				set.Add("rect", s.G)
			}
		}
		modRec, _, modErr = eager.Train(set, eager.DefaultOptions())
	})
	if modErr != nil {
		t.Fatal(modErr)
	}
	return modRec
}

func TestModifiedRectOrientation(t *testing.T) {
	app, err := New(Config{Recognizer: modifiedRecognizer(t), Mode: grandma.ModeMouseUp, Modified: true})
	if err != nil {
		t.Fatal(err)
	}
	gen := driver(40)
	var rect synth.Class
	for _, c := range synth.GDPClasses() {
		if c.Name == "rect" {
			rect = c
		}
	}
	// Draw the rect gesture tilted 30 degrees; the created rectangle's
	// orientation must follow.
	tilt := math.Pi / 6
	rc := synth.RotatedClass(rect, tilt)
	p := gen.SampleAt(rc, geom.Pt(200, 120)).G.Points
	app.PlayGesture(p)
	if app.Scene.Len() != 1 || app.Scene.Shapes()[0].Kind() != "rect" {
		t.Fatalf("scene = %v (log: %v)", app.Scene.Kinds(), app.Log)
	}
	r := app.Scene.Shapes()[0].(*Rect)
	if !mathx.ApproxEqual(r.Angle, tilt, 0.25) { // generous: jitter + 3rd-point estimate
		t.Errorf("rect angle = %.2f rad, want about %.2f", r.Angle, tilt)
	}
	// An untilted gesture yields a near-axis-aligned rectangle.
	p0 := gen.SampleAt(rect, geom.Pt(400, 120)).G.Points
	app.PlayGesture(p0)
	r2, ok := app.Scene.Shapes()[1].(*Rect)
	if !ok {
		t.Fatalf("second shape: %v (log: %v)", app.Scene.Kinds(), app.Log)
	}
	if math.Abs(r2.Angle) > 0.2 {
		t.Errorf("untilted rect angle = %.2f", r2.Angle)
	}
}

func TestModifiedLineThickness(t *testing.T) {
	app, err := New(Config{Recognizer: testRecognizer(t), Mode: grandma.ModeMouseUp, Modified: true})
	if err != nil {
		t.Fatal(err)
	}
	gen := driver(41)
	var lineClass synth.Class
	for _, c := range synth.GDPClasses() {
		if c.Name == "line" {
			lineClass = c
		}
	}
	p := gen.SampleAt(lineClass, geom.Pt(100, 100)).G.Points
	app.PlayGesture(p)
	if app.Scene.Len() != 1 || app.Scene.Shapes()[0].Kind() != "line" {
		t.Fatalf("scene = %v (log: %v)", app.Scene.Kinds(), app.Log)
	}
	l := app.Scene.Shapes()[0].(*Line)
	wantT := math.Max(1, math.Round(geom.Path(p).Length()/40))
	if l.Thickness != wantT {
		t.Errorf("thickness = %v, want %v", l.Thickness, wantT)
	}
	if l.Thickness < 2 {
		t.Errorf("line gesture of length %.0f should map to thickness >= 2", geom.Path(p).Length())
	}
}

func TestUnmodifiedDefaultsPreserved(t *testing.T) {
	app := newApp(t, grandma.ModeMouseUp)
	gen := driver(42)
	var lineClass synth.Class
	for _, c := range synth.GDPClasses() {
		if c.Name == "line" {
			lineClass = c
		}
	}
	app.PlayGesture(gen.SampleAt(lineClass, geom.Pt(100, 100)).G.Points)
	l := app.Scene.Shapes()[0].(*Line)
	if l.Thickness != 1 {
		t.Errorf("unmodified thickness = %v", l.Thickness)
	}
}

func TestThickLineDraw(t *testing.T) {
	app := newApp(t, grandma.ModeMouseUp)
	thin := NewLine(10, 10, 60, 10)
	app.Scene.Add(thin)
	app.Render()
	thinCount := app.Canvas.Count('+')
	app.Scene.Clear()
	thick := NewLine(10, 10, 60, 10)
	thick.Thickness = 3
	app.Scene.Add(thick)
	app.Render()
	if got := app.Canvas.Count('+'); got < thinCount*2 {
		t.Errorf("thick line painted %d cells vs thin %d", got, thinCount)
	}
	// Degenerate thick line does not panic and paints its point.
	deg := NewLine(5, 5, 5, 5)
	deg.Thickness = 4
	app.Scene.Clear()
	app.Scene.Add(deg)
	app.Render()
	if app.Canvas.At(5, 5) != '+' {
		t.Error("degenerate thick line unpainted")
	}
}

func TestRejectionThresholds(t *testing.T) {
	app := newApp(t, grandma.ModeMouseUp)
	var rejections int
	app.Handler.OnRejected = func(a *grandma.Attrs, prob, dist float64) { rejections++ }
	app.Handler.MaxMahalanobis = 12

	gen := driver(43)
	// A clean rect gesture passes.
	p := gestureAt(t, gen, "rect", geom.Pt(100, 100))
	app.PlayGesture(p)
	if app.Scene.Len() != 1 || rejections != 0 {
		t.Fatalf("clean gesture rejected? scene=%v rejections=%d (log: %v)", app.Scene.Kinds(), rejections, app.Log)
	}
	// Garbage — a dense spiral scribble unlike any trained class — is
	// rejected by the Mahalanobis gate and creates nothing.
	var scribble geom.Path
	for i := 0; i < 60; i++ {
		ang := float64(i) * 0.9
		r := 4 + float64(i)*2.5
		scribble = append(scribble, geom.TimedPoint{
			X: 300 + r*math.Cos(ang),
			Y: 200 + r*math.Sin(ang),
			T: float64(i) * 0.02,
		})
	}
	app.PlayGesture(scribble)
	if rejections != 1 {
		t.Fatalf("scribble not rejected (scene=%v, log=%v)", app.Scene.Kinds(), app.Log)
	}
	if app.Scene.Len() != 1 {
		t.Fatalf("rejected gesture still created a shape: %v", app.Scene.Kinds())
	}
}

func TestRejectionProbabilityGate(t *testing.T) {
	// An impossible probability bar rejects everything.
	app := newApp(t, grandma.ModeMouseUp)
	rejected := 0
	app.Handler.OnRejected = func(a *grandma.Attrs, prob, dist float64) { rejected++ }
	app.Handler.MinProbability = 1.1
	gen := driver(44)
	app.PlayGesture(gestureAt(t, gen, "line", geom.Pt(100, 100)))
	if rejected != 1 || app.Scene.Len() != 0 {
		t.Fatalf("rejected=%d scene=%v", rejected, app.Scene.Kinds())
	}
}
