package serve

import (
	"errors"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/multipath"
	"repro/internal/obs"
)

// admitCounter reads one counter out of a registry snapshot.
func admitCounter(t *testing.T, reg *obs.Registry, name string) int64 {
	t.Helper()
	for _, c := range reg.Snapshot().Counters {
		if c.Name == name {
			return c.Value
		}
	}
	t.Fatalf("counter %q not registered", name)
	return 0
}

// admitGauge reads one gauge out of a registry snapshot.
func admitGauge(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	for _, g := range reg.Snapshot().Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	t.Fatalf("gauge %q not registered", name)
	return 0
}

// admitFixture builds an Admission on a manual clock with a tight,
// fully specified configuration so the state machine steps are exact.
func admitFixture(t *testing.T, opts AdmitOptions) (*Admission, *fault.ManualClock) {
	t.Helper()
	clk := fault.NewManualClock(time.Unix(1_700_000_000, 0))
	opts.Clock = clk
	a, err := NewAdmission(opts)
	if err != nil {
		t.Fatalf("NewAdmission: %v", err)
	}
	return a, clk
}

func TestAdmissionValidation(t *testing.T) {
	bad := []AdmitOptions{
		{Target: -time.Second},
		{Interval: -time.Second},
		{RetryAfter: -time.Second},
		{Sustain: -1},
		{ShedMin: -0.1},
		{ShedMin: 1.5},
		{ShedMax: 2},
		{ShedMin: 0.9, ShedMax: 0.1},
	}
	for i, o := range bad {
		if _, err := NewAdmission(o); err == nil {
			t.Errorf("case %d: options %+v accepted, want error", i, o)
		}
	}
	if _, err := NewAdmission(AdmitOptions{}); err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}
}

func TestAdmissionNilSafe(t *testing.T) {
	var a *Admission
	if !a.Admit() {
		t.Fatal("nil Admission must admit")
	}
	a.Observe(time.Second)
	if got := a.State(); got != AdmitHealthy {
		t.Fatalf("nil State = %v, want healthy", got)
	}
	if a.ShedPerMille() != 0 || a.RetryAfterMS() != 0 || a.WaitP99() != 0 {
		t.Fatal("nil Admission must report zero shed/retry/p99")
	}
}

// TestAdmissionStateMachine walks the controller through the full
// lifecycle on a virtual clock: healthy while the bad streak builds,
// brownout at Sustain with the shed fraction starting at ShedMin and
// doubling up to ShedMax, then halving through good intervals back to
// healthy.
func TestAdmissionStateMachine(t *testing.T) {
	const interval = 100 * time.Millisecond
	a, clk := admitFixture(t, AdmitOptions{
		Target:   5 * time.Millisecond,
		Interval: interval,
		Sustain:  3,
		ShedMin:  0.1,
		ShedMax:  0.8,
	})

	// step forces one evaluation: advance past the interval boundary
	// and deliver one observation.
	step := func(wait time.Duration) {
		clk.Advance(interval)
		a.Observe(wait)
	}

	// First observation triggers the initial evaluation (streak 1).
	a.Observe(10 * time.Millisecond)
	wantShed := []int64{0, 100, 200, 400, 800, 800}
	for i, want := range wantShed {
		step(10 * time.Millisecond)
		if got := a.ShedPerMille(); got != want {
			t.Fatalf("bad interval %d: shed %d permille, want %d", i+2, got, want)
		}
	}
	if a.State() != AdmitBrownout {
		t.Fatalf("state after sustained overload = %v, want brownout", a.State())
	}
	if a.WaitP99() <= 5*time.Millisecond {
		t.Fatalf("WaitP99 = %v, want > target", a.WaitP99())
	}

	// Recovery: stop observing entirely; the stale window slots age out
	// on the clock, so each further evaluation sees an empty (zero)
	// p99 and halves the fraction: 800 -> 400 -> 200 -> 100 -> 0.
	for _, want := range []int64{400, 200, 100, 0} {
		clk.Advance(2 * interval) // let both merged slots go stale
		if got := a.State(); want > 0 && got != AdmitBrownout {
			t.Fatalf("state during recovery = %v, want brownout", got)
		}
		if got := a.ShedPerMille(); got != want {
			t.Fatalf("recovery: shed %d permille, want %d", got, want)
		}
	}
	if a.State() != AdmitHealthy {
		t.Fatalf("state after recovery = %v, want healthy", a.State())
	}
}

// TestAdmissionRotorDeterminism pins the pacing property: at p permille
// exactly p of every 1000 consecutive decisions shed, with the shed
// side observable in serve.admit.shed.
func TestAdmissionRotorDeterminism(t *testing.T) {
	reg := obs.New()
	a, _ := admitFixture(t, AdmitOptions{
		Target:  time.Millisecond,
		Sustain: 1,
		ShedMin: 0.5,
		ShedMax: 0.5,
		Obs:     reg,
	})
	// One over-target observation, one evaluation: p jumps to ShedMin.
	a.Observe(50 * time.Millisecond)
	if got := a.ShedPerMille(); got != 500 {
		t.Fatalf("shed fraction = %d permille, want 500", got)
	}
	shed := 0
	for i := 0; i < 1000; i++ {
		if !a.Admit() {
			shed++
		}
	}
	if shed != 500 {
		t.Fatalf("shed %d of 1000 decisions at 500 permille, want exactly 500", shed)
	}
	if got := admitCounter(t, reg, "serve.admit.shed"); got != 500 {
		t.Fatalf("serve.admit.shed = %d, want 500", got)
	}
	if got := admitGauge(t, reg, "serve.admit.state"); got != float64(AdmitBrownout) {
		t.Fatalf("serve.admit.state gauge = %v, want %v", got, float64(AdmitBrownout))
	}
	// Retry hint scales with depth: base 50ms x (1 + 500/250) = 150ms.
	if got := a.RetryAfterMS(); got != 150 {
		t.Fatalf("RetryAfterMS = %d, want 150", got)
	}
}

// TestAdmissionShedsAndRecovers is the acceptance scenario: a simulated
// queue whose arrival rate exceeds its service rate builds wait until
// the controller browns out; shedding then caps the backlog, and when
// the burst ends the wait p99 recovers under target and the controller
// returns to healthy — all on a virtual-clock timeline.
func TestAdmissionShedsAndRecovers(t *testing.T) {
	const (
		interval    = 100 * time.Millisecond
		target      = 50 * time.Millisecond
		serviceRate = 10 // events drained per interval
		arrivalRate = 25 // events offered per interval while the burst lasts
	)
	a, clk := admitFixture(t, AdmitOptions{
		Target:   target,
		Interval: interval,
		Sustain:  2,
		ShedMin:  0.2,
		ShedMax:  0.9,
	})

	depth := 0
	sawBrownout := false
	peakWait := time.Duration(0)
	totalShed := 0
	// Burst phase: 40 intervals of 2.5x overload.
	for i := 0; i < 40; i++ {
		clk.Advance(interval)
		for j := 0; j < arrivalRate; j++ {
			if a.Admit() {
				depth++
			} else {
				totalShed++
			}
		}
		drained := serviceRate
		if depth < drained {
			drained = depth
		}
		depth -= drained
		// Wait of the last event drained this interval: proportional to
		// the backlog it sat behind.
		wait := time.Duration(depth) * interval / serviceRate
		if wait > peakWait {
			peakWait = wait
		}
		a.Observe(wait)
		if a.State() == AdmitBrownout {
			sawBrownout = true
		}
	}
	if !sawBrownout {
		t.Fatal("controller never entered brownout under 2.5x sustained overload")
	}
	if totalShed == 0 {
		t.Fatal("controller never shed under sustained overload")
	}
	if peakWait <= target {
		t.Fatalf("peak simulated wait %v never exceeded target %v; scenario is too weak", peakWait, target)
	}
	// Shedding must have held the backlog finite: with no admission
	// control 40 intervals of +15/interval would leave 600 queued.
	if depth >= 40*(arrivalRate-serviceRate) {
		t.Fatalf("backlog %d events — shedding had no effect", depth)
	}

	// Burst over: drain and let the window age out.
	for i := 0; i < 40 && (depth > 0 || a.State() != AdmitHealthy); i++ {
		clk.Advance(interval)
		if depth > 0 {
			drained := serviceRate
			if depth < drained {
				drained = depth
			}
			depth -= drained
			a.Observe(time.Duration(depth) * interval / serviceRate)
		} else {
			a.State() // keep evaluations ticking on the empty window
		}
	}
	if got := a.State(); got != AdmitHealthy {
		t.Fatalf("state after burst ended = %v (shed %d permille), want healthy", got, a.ShedPerMille())
	}
	if got := a.WaitP99(); got > target {
		t.Fatalf("wait p99 after recovery = %v, want <= %v", got, target)
	}
}

// TestEngineAdmissionGate pins the engine integration: a pre-driven
// controller at full shed makes Submit return ErrOverloaded without
// queueing, the Submitter passes it through without retrying, and the
// event counts into Stats.Rejected exactly once.
func TestEngineAdmissionGate(t *testing.T) {
	reg := obs.New()
	a, _ := admitFixture(t, AdmitOptions{
		Target:  time.Millisecond,
		Sustain: 1,
		ShedMin: 1.0,
		ShedMax: 1.0,
	})
	a.Observe(time.Second) // drive to 1000 permille: shed everything
	if got := a.ShedPerMille(); got != 1000 {
		t.Fatalf("shed fraction = %d permille, want 1000", got)
	}
	e, err := New(trainRec(t, 1), Options{Shards: 1, Admission: a, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ev := Event{Session: "s", Finger: 0, Kind: multipath.FingerDown, X: 1, Y: 1, T: 1}
	if err := e.Submit(ev); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Submit under full shed = %v, want ErrOverloaded", err)
	}
	if err := NewSubmitter(e, SubmitterOptions{}).Submit(ev); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Submitter.Submit under full shed = %v, want ErrOverloaded (no retry loop)", err)
	}
	st := e.Stats()
	if st.Rejected != 2 {
		t.Fatalf("Stats.Rejected = %d, want 2", st.Rejected)
	}
	if st.Submitted != 0 {
		t.Fatalf("Stats.Submitted = %d, want 0 — shed events must not queue", st.Submitted)
	}
	if got := e.AdmitState(); got != AdmitBrownout {
		t.Fatalf("AdmitState = %v, want brownout", got)
	}
	if e.Admission() != a {
		t.Fatal("Admission() accessor must return the installed controller")
	}
	if got := admitCounter(t, reg, "serve.events.rejected"); got != 2 {
		t.Fatalf("serve.events.rejected = %d, want 2", got)
	}
}

// TestEngineAdmitOptions pins the Options.Admit construction path: the
// engine builds its own controller, defaults its clock/registry from
// the engine's, and a healthy controller admits everything.
func TestEngineAdmitOptions(t *testing.T) {
	reg := obs.New()
	e, err := New(trainRec(t, 1), Options{
		Shards: 1,
		Obs:    reg,
		Admit:  &AdmitOptions{Target: time.Hour}, // unreachable target: never sheds
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Admission() == nil {
		t.Fatal("Options.Admit did not install a controller")
	}
	g, _ := sampleGesture(7, 0)
	playSession(t, e, "s1", g)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := e.AdmitState(); got != AdmitHealthy {
		t.Fatalf("AdmitState = %v, want healthy", got)
	}
	if got := e.Stats().Rejected; got != 0 {
		t.Fatalf("Stats.Rejected = %d, want 0", got)
	}
	// The invalid-options error propagates out of New.
	if _, err := New(trainRec(t, 1), Options{Admit: &AdmitOptions{Sustain: -1}}); err == nil {
		t.Fatal("New accepted invalid AdmitOptions")
	}
}
