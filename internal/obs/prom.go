package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the Prometheus text exposition
// format version this package writes.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName maps a registry metric name onto the Prometheus name grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*): the dots this repo namespaces with become
// underscores, and any other illegal rune does too. "serve.events.submitted"
// scrapes as "serve_events_submitted".
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders v the way Prometheus expects: shortest round-trip
// decimal, with the infinities spelled +Inf/-Inf.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// WriteProm renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters as counter samples, gauges as gauge
// samples, and histograms as the conventional _bucket (cumulative, with
// le labels up to +Inf), _sum, and _count series. Windowed instruments,
// span buffers, and trace rings have no Prometheus shape and are
// skipped — a scraper derives rates from the cumulative series, and the
// windowed views stay on /metrics and /slo. Metric names are sanitized
// by promName.
func (s Snapshot) WriteProm(w io.Writer) error {
	for _, c := range s.Counters {
		n := promName(c.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		n := promName(g.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(g.Value)); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		n := promName(h.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		var cum int64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = promFloat(h.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", n, promFloat(h.Sum), n, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// PromHandler returns an http.Handler serving the registry's Snapshot in
// the Prometheus text exposition format — cmd/gserve mounts it at
// /metrics.prom. Safe with a nil registry (serves an empty body).
func PromHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		_ = r.Snapshot().WriteProm(w)
	})
}
