// Package fixture exercises the unuseddirective check, run here under the
// floateq analyzer: a directive that suppresses a real finding is earning
// its keep, one that suppresses nothing is stale, and one naming an
// analyzer that did not run is given the benefit of the doubt.
package fixture

// usedDirective suppresses a genuine floateq finding; no report.
func usedDirective(a, b float64) bool {
	//lint:ignore floateq fixture: bitwise equality is intended here
	return a == b
}

// staleDirective guards an integer comparison floateq never flags.
func staleDirective(a, b int) bool {
	//lint:ignore floateq fixture claims a float comparison below // want `//lint:ignore floateq suppresses nothing`
	return a == b
}

// otherAnalyzer names an analyzer that does not run in this fixture, so
// its staleness cannot be judged; no report.
func otherAnalyzer(a, b int) int {
	//lint:ignore nopanic fixture: guard documented elsewhere
	if a == 0 {
		return 0
	}
	return b / a
}
