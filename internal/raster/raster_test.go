package raster

import (
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestNewCanvasAndClear(t *testing.T) {
	c := NewCanvas(4, 3)
	if c.NonEmpty() != 0 {
		t.Fatal("fresh canvas not empty")
	}
	c.Set(1, 1, '*')
	if c.At(1, 1) != '*' || c.NonEmpty() != 1 {
		t.Fatal("Set/At broken")
	}
	c.Clear()
	if c.NonEmpty() != 0 {
		t.Fatal("Clear broken")
	}
}

func TestNewCanvasPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-size canvas accepted")
		}
	}()
	NewCanvas(0, 5)
}

func TestClipping(t *testing.T) {
	c := NewCanvas(3, 3)
	c.Set(-1, 0, '*')
	c.Set(0, -1, '*')
	c.Set(3, 0, '*')
	c.Set(0, 3, '*')
	if c.NonEmpty() != 0 {
		t.Fatal("out-of-bounds set painted something")
	}
	if c.At(-1, -1) != 0 {
		t.Fatal("out-of-bounds At nonzero")
	}
}

func TestHorizontalLine(t *testing.T) {
	c := NewCanvas(10, 3)
	c.Line(1, 1, 8, 1, '-')
	if c.Count('-') != 8 {
		t.Fatalf("horizontal line painted %d cells", c.Count('-'))
	}
}

func TestDiagonalLine(t *testing.T) {
	c := NewCanvas(10, 10)
	c.Line(0, 0, 9, 9, '\\')
	for i := 0; i < 10; i++ {
		if c.At(i, i) != '\\' {
			t.Fatalf("diagonal missing at (%d,%d)", i, i)
		}
	}
	// Reverse direction must paint the same cells.
	c2 := NewCanvas(10, 10)
	c2.Line(9, 9, 0, 0, '\\')
	if c.String() != c2.String() {
		t.Error("line direction changed raster")
	}
}

func TestRect(t *testing.T) {
	c := NewCanvas(12, 8)
	c.Rect(geom.Rect{MinX: 2, MinY: 1, MaxX: 9, MaxY: 6}, '#')
	// Corners painted.
	for _, p := range [][2]int{{2, 1}, {9, 1}, {9, 6}, {2, 6}} {
		if c.At(p[0], p[1]) != '#' {
			t.Fatalf("corner (%d,%d) unpainted", p[0], p[1])
		}
	}
	// Interior empty.
	if c.At(5, 3) != 0 {
		t.Fatal("interior painted")
	}
	c.Rect(geom.EmptyRect(), '#') // must not panic
}

func TestEllipse(t *testing.T) {
	c := NewCanvas(21, 21)
	c.Ellipse(10, 10, 8, 5, 'o')
	// Extremes painted.
	for _, p := range [][2]int{{18, 10}, {2, 10}, {10, 15}, {10, 5}} {
		if c.At(p[0], p[1]) != 'o' {
			t.Fatalf("ellipse extreme (%d,%d) unpainted", p[0], p[1])
		}
	}
	if c.At(10, 10) != 0 {
		t.Fatal("ellipse center painted")
	}
	c.Ellipse(0, 0, -1, 5, 'o') // negative radius: no-op
}

func TestPolygon(t *testing.T) {
	c := NewCanvas(20, 20)
	c.Polygon([]geom.Point{{X: 2, Y: 2}, {X: 15, Y: 2}, {X: 15, Y: 15}}, '+')
	if c.At(2, 2) != '+' || c.At(15, 15) != '+' {
		t.Fatal("polygon vertices unpainted")
	}
	// Closing edge back to start.
	if c.At(9, 9) != '+' { // on the hypotenuse 15,15 -> 2,2
		t.Fatal("closing edge missing")
	}
	c.Polygon([]geom.Point{{X: 1, Y: 1}}, '+') // single point: no-op
}

func TestPathAndDotted(t *testing.T) {
	p := geom.Path{{X: 1, Y: 1, T: 0}, {X: 6, Y: 1, T: 1}, {X: 6, Y: 4, T: 2}}
	c := NewCanvas(10, 6)
	c.Path(p, '*')
	if c.At(3, 1) != '*' || c.At(6, 3) != '*' {
		t.Fatal("path segments unpainted")
	}
	c2 := NewCanvas(10, 6)
	c2.Dotted(p, '.')
	if c2.NonEmpty() != 3 {
		t.Fatalf("dotted painted %d cells, want 3", c2.NonEmpty())
	}
	c3 := NewCanvas(4, 4)
	c3.Path(geom.Path{{X: 2, Y: 2, T: 0}}, '*')
	if c3.At(2, 2) != '*' {
		t.Fatal("single-point path unpainted")
	}
}

func TestText(t *testing.T) {
	c := NewCanvas(8, 2)
	c.Text(1, 0, "hi")
	if c.At(1, 0) != 'h' || c.At(2, 0) != 'i' {
		t.Fatal("text unpainted")
	}
	c.Text(6, 1, "long") // clipped
	if c.At(7, 1) != 'o' {
		t.Fatal("clipped text wrong")
	}
}

func TestString(t *testing.T) {
	c := NewCanvas(3, 2)
	c.Set(0, 0, 'A')
	got := c.String()
	want := "A..\n...\n"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	if strings.Count(got, "\n") != 2 {
		t.Fatal("line count wrong")
	}
}

func TestDownsample(t *testing.T) {
	c := NewCanvas(10, 10)
	c.Set(0, 0, 'A')
	c.Set(9, 9, 'B')
	d := c.Downsample(5, 5)
	if d.W != 2 || d.H != 2 {
		t.Fatalf("downsampled %dx%d", d.W, d.H)
	}
	if d.At(0, 0) != 'A' || d.At(1, 1) != 'B' {
		t.Errorf("glyphs lost: %q %q", d.At(0, 0), d.At(1, 1))
	}
	if d.At(1, 0) != 0 || d.At(0, 1) != 0 {
		t.Error("empty blocks painted")
	}
	// Non-divisible dimensions round up.
	d2 := NewCanvas(7, 5).Downsample(3, 2)
	if d2.W != 3 || d2.H != 3 {
		t.Errorf("ragged downsample %dx%d", d2.W, d2.H)
	}
	// First painted glyph in a block wins (row-major).
	c3 := NewCanvas(4, 4)
	c3.Set(1, 0, 'x')
	c3.Set(0, 1, 'y')
	if got := c3.Downsample(2, 2).At(0, 0); got != 'x' {
		t.Errorf("block glyph = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive factors did not panic")
		}
	}()
	c.Downsample(0, 1)
}
