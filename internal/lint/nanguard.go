package lint

import (
	"go/ast"
	"go/types"
)

// NanGuardFuncs maps package paths to the functions whose error (or ok)
// result must not be dropped. These are the numerical routines that fail
// on degenerate data — a singular covariance, a zero-length stroke — and
// whose failure, if ignored, propagates NaN/Inf or a stale result into
// every later classification. The var is exported so tests can register
// fixture targets.
var NanGuardFuncs = map[string]map[string]bool{
	"repro/internal/linalg": {
		"Invert":            true,
		"InvertRegularized": true,
		"Solve":             true,
	},
}

// NanGuard reports call sites that drop the error/ok result of the
// guarded numerical routines: either by using the call as a bare
// expression statement or by assigning the error/ok result to the blank
// identifier.
var NanGuard = &Analyzer{
	Name: "nanguard",
	Doc: "flag call sites that drop the error/ok result of linalg inverse/solve routines; ignoring a " +
		"singularity failure propagates NaN or a stale matrix into every later classification.",
	Run: runNanGuard,
}

func runNanGuard(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if fn := guardedCallee(pass, st.X); fn != nil {
					pass.Reportf(st.Pos(), "result of %s.%s dropped; the error/ok result must be checked",
						fn.Pkg().Path(), fn.Name())
				}
			case *ast.AssignStmt:
				// Only the multi-assign form `a, b := f()` can silently
				// blank an error: find the guarded call and check whether
				// its error/ok result position is assigned to _.
				if len(st.Rhs) != 1 {
					return true
				}
				fn := guardedCallee(pass, st.Rhs[0])
				if fn == nil {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok {
					return true
				}
				idx := guardResultIndex(sig)
				if idx < 0 || idx >= len(st.Lhs) {
					return true
				}
				if id, ok := st.Lhs[idx].(*ast.Ident); ok && id.Name == "_" {
					pass.Reportf(id.Pos(), "error result of %s.%s assigned to _; the error/ok result must be checked",
						fn.Pkg().Path(), fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// guardedCallee returns the *types.Func of e's callee when e is a call to
// a guarded routine, nil otherwise.
func guardedCallee(pass *Pass, e ast.Expr) *types.Func {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if names := NanGuardFuncs[fn.Pkg().Path()]; names != nil && names[fn.Name()] {
		return fn
	}
	return nil
}

// guardResultIndex returns the index of the error (or trailing bool "ok")
// result in sig, or -1 when the signature has none.
func guardResultIndex(sig *types.Signature) int {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return i
		}
	}
	if res.Len() > 0 {
		last := res.At(res.Len() - 1)
		if b, ok := last.Type().Underlying().(*types.Basic); ok && b.Kind() == types.Bool {
			return res.Len() - 1
		}
	}
	return -1
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
