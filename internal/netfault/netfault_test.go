package netfault

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// memConn is a scriptable in-memory net.Conn half: reads consume a
// buffer, writes append to a log, and every underlying call is counted.
type memConn struct {
	mu     sync.Mutex
	in     bytes.Buffer
	out    bytes.Buffer
	reads  int
	writes int
	closed bool
}

func (m *memConn) Read(b []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reads++
	if m.closed {
		return 0, io.EOF
	}
	return m.in.Read(b)
}

func (m *memConn) Write(b []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.writes++
	if m.closed {
		return 0, errors.New("memconn: closed")
	}
	return m.out.Write(b)
}

func (m *memConn) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

func (m *memConn) LocalAddr() net.Addr                { return nil }
func (m *memConn) RemoteAddr() net.Addr               { return nil }
func (m *memConn) SetDeadline(t time.Time) error      { return nil }
func (m *memConn) SetReadDeadline(t time.Time) error  { return nil }
func (m *memConn) SetWriteDeadline(t time.Time) error { return nil }

// TestScheduleDeterminism: two schedules from the same plan make
// identical decisions over a grid of (direction, label, index), and a
// different seed changes the stream.
func TestScheduleDeterminism(t *testing.T) {
	plan := Plan{
		Seed:       42,
		ReadRates:  map[Kind]float64{KindShortRead: 0.2, KindCorrupt: 0.1, KindStall: 0.1, KindReset: 0.05},
		WriteRates: map[Kind]float64{KindSplit: 0.2, KindCorrupt: 0.1, KindTruncate: 0.05, KindJitter: 0.1},
	}
	a, err := NewSchedule(plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSchedule(plan)
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewSchedule(Plan{Seed: 43, ReadRates: plan.ReadRates, WriteRates: plan.WriteRates})
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for _, d := range []Dir{DirRead, DirWrite} {
		for _, label := range []string{"a0", "a1", "conn-7"} {
			for i := 0; i < 200; i++ {
				ka, kb := a.Decide(d, label, i), b.Decide(d, label, i)
				if ka != kb {
					t.Fatalf("divergent decision at (%c, %s, %d): %v vs %v", d, label, i, ka, kb)
				}
				if ka != other.Decide(d, label, i) {
					diff++
				}
			}
		}
	}
	if diff == 0 {
		t.Fatal("different seeds made identical decision streams")
	}
	// Rates materialized: each enabled kind fired at least once in 1200
	// draws at >=5% rates.
	counts := a.Counts()
	for _, k := range []Kind{KindShortRead, KindCorrupt, KindStall, KindReset, KindSplit, KindTruncate, KindJitter} {
		if counts[k.String()] == 0 {
			t.Errorf("kind %v never drawn", k)
		}
	}
}

// TestPlanValidation: inapplicable kinds, out-of-range rates, excess
// sums, and negative durations are rejected.
func TestPlanValidation(t *testing.T) {
	for name, p := range map[string]Plan{
		"split on read":        {ReadRates: map[Kind]float64{KindSplit: 0.1}},
		"short read on write":  {WriteRates: map[Kind]float64{KindShortRead: 0.1}},
		"negative rate":        {ReadRates: map[Kind]float64{KindCorrupt: -0.1}},
		"rate above one":       {WriteRates: map[Kind]float64{KindCorrupt: 1.5}},
		"read sum above one":   {ReadRates: map[Kind]float64{KindCorrupt: 0.6, KindReset: 0.6}},
		"write sum above one":  {WriteRates: map[Kind]float64{KindSplit: 0.7, KindJitter: 0.7}},
		"negative stall":       {StallFor: -time.Second},
		"unknown kind on read": {ReadRates: map[Kind]float64{Kind(99): 0.1}},
	} {
		if _, err := NewSchedule(p); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := NewSchedule(Plan{}); err != nil {
		t.Errorf("empty plan rejected: %v", err)
	}
}

// TestNilSafety: nil drivers decide nothing, wrap nothing, and count
// nothing.
func TestNilSafety(t *testing.T) {
	var s *Schedule
	var sc *Script
	if k := s.Decide(DirRead, "x", 0); k != KindNone {
		t.Fatalf("nil schedule decided %v", k)
	}
	mc := &memConn{}
	if c := s.Conn(mc, "x"); c != net.Conn(mc) {
		t.Fatal("nil schedule wrapped a conn")
	}
	if c := sc.Conn(mc, "x"); c != net.Conn(mc) {
		t.Fatal("nil script wrapped a conn")
	}
	s.Instrument(nil)
	sc.Instrument(nil)
	s.SetSleep(nil)
	sc.SetSleep(nil)
	if n := len(s.Counts()) + len(sc.Counts()); n != 0 {
		t.Fatalf("nil counts = %d entries", n)
	}
}

// TestScriptWriteFaults: scripted split, corrupt, truncate, and reset
// apply to exactly the scripted write and are visible in counters.
func TestScriptWriteFaults(t *testing.T) {
	reg := obs.New()
	payload := []byte("0123456789abcdefghij") // 20 bytes: longer than a v2 header

	t.Run("split", func(t *testing.T) {
		mc := &memConn{}
		sc := NewScript().Set("c", DirWrite, 0, KindSplit)
		c := sc.Conn(mc, "c")
		n, err := c.Write(payload)
		if n != len(payload) || err != nil {
			t.Fatalf("split write = (%d, %v)", n, err)
		}
		if mc.writes != 2 {
			t.Fatalf("underlying writes = %d, want 2", mc.writes)
		}
		if !bytes.Equal(mc.out.Bytes(), payload) {
			t.Fatal("split write changed bytes")
		}
		if _, err := c.Write(payload); err != nil || mc.writes != 3 {
			t.Fatalf("second write faulted: %v (writes %d)", err, mc.writes)
		}
	})

	t.Run("corrupt avoids stamp window", func(t *testing.T) {
		mc := &memConn{}
		sc := NewScript().Set("c", DirWrite, 0, KindCorrupt)
		sc.Instrument(reg)
		c := sc.Conn(mc, "c")
		if n, err := c.Write(payload); n != len(payload) || err != nil {
			t.Fatalf("corrupt write = (%d, %v)", n, err)
		}
		got := mc.out.Bytes()
		diffs := 0
		pos := -1
		for i := range payload {
			if got[i] != payload[i] {
				diffs++
				pos = i
			}
		}
		if diffs != 1 {
			t.Fatalf("corrupt flipped %d bytes, want 1", diffs)
		}
		if pos >= frameStampLo && pos < frameStampHi {
			t.Fatalf("corruption landed in the stamp window at %d", pos)
		}
		if got := sc.Counts(); got["corrupt"] != 1 {
			t.Fatalf("counts = %v, want corrupt:1", got)
		}
		if v := snapCounter(t, reg, "netfault.injected.corrupt"); v != 1 {
			t.Fatalf("netfault.injected.corrupt = %d, want 1", v)
		}
		if v := snapCounter(t, reg, "netfault.injected.total"); v != 1 {
			t.Fatalf("netfault.injected.total = %d, want 1", v)
		}
	})

	t.Run("truncate", func(t *testing.T) {
		mc := &memConn{}
		sc := NewScript().Set("c", DirWrite, 0, KindTruncate)
		c := sc.Conn(mc, "c")
		n, err := c.Write(payload)
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("truncate err = %v, want ErrInjected", err)
		}
		if n >= len(payload) || n != mc.out.Len() {
			t.Fatalf("truncate delivered %d bytes (logged %d)", n, mc.out.Len())
		}
		if !mc.closed {
			t.Fatal("truncate did not close the conn")
		}
	})

	t.Run("reset", func(t *testing.T) {
		mc := &memConn{}
		sc := NewScript().Set("c", DirWrite, 0, KindReset)
		c := sc.Conn(mc, "c")
		if _, err := c.Write(payload); !errors.Is(err, ErrInjected) {
			t.Fatalf("reset err = %v, want ErrInjected", err)
		}
		if !mc.closed {
			t.Fatal("reset did not close the conn")
		}
	})
}

// TestScriptReadFaults: scripted short reads, read corruption, read
// truncation, and stalls behave as documented.
func TestScriptReadFaults(t *testing.T) {
	payload := []byte("hello-netfault-world")

	t.Run("short read", func(t *testing.T) {
		mc := &memConn{}
		mc.in.Write(payload)
		sc := NewScript().Set("c", DirRead, 0, KindShortRead)
		c := sc.Conn(mc, "c")
		buf := make([]byte, 64)
		n, err := c.Read(buf)
		if n != 1 || err != nil || buf[0] != payload[0] {
			t.Fatalf("short read = (%d, %v, %q)", n, err, buf[:n])
		}
		if n, _ := c.Read(buf); n != len(payload)-1 {
			t.Fatalf("follow-up read = %d, want %d", n, len(payload)-1)
		}
	})

	t.Run("corrupt", func(t *testing.T) {
		mc := &memConn{}
		mc.in.Write(payload)
		sc := NewScript().Set("c", DirRead, 0, KindCorrupt)
		c := sc.Conn(mc, "c")
		buf := make([]byte, 64)
		n, err := c.Read(buf)
		if n != len(payload) || err != nil {
			t.Fatalf("corrupt read = (%d, %v)", n, err)
		}
		diffs := 0
		for i := 0; i < n; i++ {
			if buf[i] != payload[i] {
				diffs++
			}
		}
		if diffs != 1 {
			t.Fatalf("corrupt read flipped %d bytes, want 1", diffs)
		}
	})

	t.Run("truncate is EOF", func(t *testing.T) {
		mc := &memConn{}
		mc.in.Write(payload)
		sc := NewScript().Set("c", DirRead, 0, KindTruncate)
		c := sc.Conn(mc, "c")
		if n, err := c.Read(make([]byte, 8)); n != 0 || err != io.EOF {
			t.Fatalf("truncate read = (%d, %v), want (0, EOF)", n, err)
		}
		if !mc.closed {
			t.Fatal("truncate did not close the conn")
		}
	})

	t.Run("stall and jitter sleep deterministically", func(t *testing.T) {
		mc := &memConn{}
		mc.in.Write(payload)
		sc := NewScript().
			Set("c", DirRead, 0, KindStall).
			Set("c", DirRead, 1, KindJitter)
		var slept []time.Duration
		sc.SetSleep(func(d time.Duration) { slept = append(slept, d) })
		c := sc.Conn(mc, "c")
		buf := make([]byte, 4)
		if _, err := c.Read(buf); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Read(buf); err != nil {
			t.Fatal(err)
		}
		if len(slept) != 2 {
			t.Fatalf("slept %d times, want 2", len(slept))
		}
		if slept[0] != 20*time.Millisecond {
			t.Fatalf("stall slept %v, want default 20ms", slept[0])
		}
		if slept[1] < 0 || slept[1] >= 2*time.Millisecond {
			t.Fatalf("jitter slept %v, want [0, 2ms)", slept[1])
		}
	})
}

// TestListenerLabels: a wrapped listener labels connections by accept
// order, so decisions are reproducible per accepted connection.
func TestListenerLabels(t *testing.T) {
	s, err := NewSchedule(Plan{Seed: 7, ReadRates: map[Kind]float64{KindShortRead: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := s.Listener(ln)
	defer wrapped.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return
		}
		c.Write([]byte("abcdef"))
		c.Close()
	}()
	c, err := wrapped.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fc, ok := c.(*Conn)
	if !ok {
		t.Fatalf("accepted conn is %T, want *netfault.Conn", c)
	}
	if fc.label != "a0" {
		t.Fatalf("label = %q, want a0", fc.label)
	}
	// Every read draws KindShortRead at rate 1: reads come back one
	// byte at a time.
	buf := make([]byte, 16)
	n, err := c.Read(buf)
	if err != nil || n != 1 {
		t.Fatalf("short read through listener = (%d, %v)", n, err)
	}
	<-done
}

// snapCounter extracts one counter value from a registry snapshot.
func snapCounter(t *testing.T, reg *obs.Registry, name string) int64 {
	t.Helper()
	for _, c := range reg.Snapshot().Counters {
		if c.Name == name {
			return c.Value
		}
	}
	t.Fatalf("counter %s not in snapshot", name)
	return 0
}
