// Package grandma reproduces the architecture of GRANDMA (Gesture
// Recognizers Automated in a Novel Direct Manipulation Architecture), the
// paper's toolkit for building gesture-based applications.
//
// GRANDMA is "a Model/View/Controller-like system ... [that] generalizes
// MVC by allowing a list of event handlers (rather than a single
// controller) to be associated with a view. Event handlers may be
// associated with view classes as well, and are inherited." (§3)
//
// The package provides:
//
//   - View and ViewClass with per-instance and per-class (inherited)
//     handler lists;
//   - event dispatch in which "the handlers associated with a particular
//     view are queried in order whenever input is initiated at the view;
//     any input ignored by one handler is propagated to the next" — and
//     then to ancestor views;
//   - direct-manipulation handlers (drag, click);
//   - the gesture handler implementing the paper's two-phase interaction
//     with all three phase-transition triggers: mouse-up, a 200 ms
//     motionless timeout, and eager recognition.
package grandma

import (
	"fmt"
	"sort"

	"repro/internal/display"
	"repro/internal/geom"
	"repro/internal/raster"
)

// ViewClass is a named class of views. Handlers attached to a class are
// shared by every view of that class and of its subclasses — the paper
// notes this "greatly improves efficiency, as a single handler is
// automatically shared by many objects".
type ViewClass struct {
	Name     string
	Super    *ViewClass
	handlers []EventHandler
}

// NewViewClass creates a view class with an optional superclass.
func NewViewClass(name string, super *ViewClass) *ViewClass {
	return &ViewClass{Name: name, Super: super}
}

// AddHandler appends an event handler to the class's list.
func (vc *ViewClass) AddHandler(h EventHandler) { vc.handlers = append(vc.handlers, h) }

// Handlers returns the class chain's handlers: this class's first, then
// each ancestor's, matching inheritance order.
func (vc *ViewClass) Handlers() []EventHandler {
	var out []EventHandler
	for c := vc; c != nil; c = c.Super {
		out = append(out, c.handlers...)
	}
	return out
}

// IsA reports whether vc is other or inherits from it.
func (vc *ViewClass) IsA(other *ViewClass) bool {
	for c := vc; c != nil; c = c.Super {
		if c == other {
			return true
		}
	}
	return false
}

// View is a displayable object. In GRANDMA terms, a view is "responsible
// for displaying models"; input directed at the view is handled by its
// event-handler list.
type View struct {
	Name    string
	Class   *ViewClass
	Frame   geom.Rect
	Z       int  // stacking order among siblings; higher is on top
	Visible bool // invisible views neither draw nor receive input

	// Model is the application object this view displays.
	Model any
	// DrawFunc paints the view; nil views are invisible containers.
	DrawFunc func(c *raster.Canvas, v *View)
	// HitFunc overrides hit testing; nil means Frame.Contains.
	HitFunc func(p geom.Point, v *View) bool

	parent   *View
	children []*View
	handlers []EventHandler
}

// NewView creates a visible view of the given class (class may be nil).
func NewView(name string, class *ViewClass) *View {
	return &View{Name: name, Class: class, Visible: true, Frame: geom.EmptyRect()}
}

// Parent returns the view's parent, or nil for a root.
func (v *View) Parent() *View { return v.parent }

// Children returns the view's children (do not mutate).
func (v *View) Children() []*View { return v.children }

// AddChild appends a child view. It panics if the child already has a
// parent — reparenting must be explicit via RemoveChild.
func (v *View) AddChild(c *View) {
	if c.parent != nil {
		panic(fmt.Sprintf("grandma: view %q already has a parent", c.Name))
	}
	c.parent = v
	v.children = append(v.children, c)
}

// RemoveChild detaches a child view; unknown children are ignored.
func (v *View) RemoveChild(c *View) {
	for i, ch := range v.children {
		if ch == c {
			v.children = append(v.children[:i], v.children[i+1:]...)
			c.parent = nil
			return
		}
	}
}

// AddHandler appends an instance-level event handler.
func (v *View) AddHandler(h EventHandler) { v.handlers = append(v.handlers, h) }

// AllHandlers returns the handlers queried for input at this view:
// instance handlers first, then the class chain's handlers.
func (v *View) AllHandlers() []EventHandler {
	out := append([]EventHandler(nil), v.handlers...)
	if v.Class != nil {
		out = append(out, v.Class.Handlers()...)
	}
	return out
}

// hits reports whether p falls on this view.
func (v *View) hits(p geom.Point) bool {
	if v.HitFunc != nil {
		return v.HitFunc(p, v)
	}
	return v.Frame.Contains(p)
}

// HitTest returns the topmost visible view at p: children are searched in
// front-to-back order (higher Z first, later siblings in front of earlier
// ones at equal Z) before the view itself. It returns nil when p misses
// everything. A container view with an empty frame still forwards hit
// testing to its children.
func (v *View) HitTest(p geom.Point) *View {
	if !v.Visible {
		return nil
	}
	order := make([]*View, len(v.children))
	copy(order, v.children)
	sort.SliceStable(order, func(i, j int) bool { return order[i].Z > order[j].Z })
	for _, c := range order {
		if hit := c.HitTest(p); hit != nil {
			return hit
		}
	}
	if v.hits(p) {
		return v
	}
	return nil
}

// Draw paints the view and its children back-to-front.
func (v *View) Draw(c *raster.Canvas) {
	if !v.Visible {
		return
	}
	if v.DrawFunc != nil {
		v.DrawFunc(c, v)
	}
	order := make([]*View, len(v.children))
	copy(order, v.children)
	sort.SliceStable(order, func(i, j int) bool { return order[i].Z < order[j].Z })
	for _, ch := range order {
		ch.Draw(c)
	}
}

// EventHandler is the interaction-technique protocol: "Each class of event
// handler implements a particular kind of interaction technique" (§3.1).
// Wants is the handler's predicate deciding which events it handles; Begin
// starts an interaction for a mouse-down it wants, returning nil to pass
// the event to the next handler.
type EventHandler interface {
	Wants(ev display.Event, v *View) bool
	Begin(ev display.Event, v *View, s *Session) Interaction
}

// Interaction is an in-progress interaction owning subsequent input until
// it reports done.
type Interaction interface {
	// Handle processes one event and returns true when the interaction has
	// completed.
	Handle(ev display.Event, s *Session) bool
}
