package floateq

// Exact float comparison in a _test.go file is exempt by specification:
// tests legitimately compare against golden values.
func goldenEqual(a, b float64) bool {
	return a == b
}
