package recognizer_test

// BACKENDS.md is the normative backend contract; this test is the
// machine check that keeps it honest, in both directions:
//
//   - the method tables in "## The interface" must list exactly the
//     methods of recognizer.Backend and recognizer.Stream — a method
//     added to the interface without documentation fails, and so does
//     a documented method that no longer exists;
//   - the "## Capability matrix" must match what freshly trained
//     backends actually report from Caps(), cell by cell.
//
// The test lives in an external package so it can train real backends
// (internal/eager, internal/template) without an import cycle.

import (
	"os"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"repro/internal/eager"
	"repro/internal/recognizer"
	"repro/internal/synth"
	"repro/internal/template"
)

// methodRowRe matches a contract-table row whose first cell is a
// backquoted method name, e.g. "| `Add` | Feed one point. ... |".
var methodRowRe = regexp.MustCompile("(?m)^\\| `([A-Za-z]+)` \\|")

// docMethodSets parses BACKENDS.md's two interface tables. The Backend
// table precedes the "A `recognizer.Stream`" marker, the Stream table
// follows it; both sit inside the "## The interface" section.
func docMethodSets(t *testing.T) (backend, stream map[string]bool) {
	t.Helper()
	raw, err := os.ReadFile("../../BACKENDS.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)
	start := strings.Index(doc, "## The interface")
	if start < 0 {
		t.Fatal("BACKENDS.md has no \"## The interface\" section — format drifted?")
	}
	section := doc[start:]
	if end := strings.Index(section[2:], "\n## "); end >= 0 {
		section = section[:end+2]
	}
	split := strings.Index(section, "A `recognizer.Stream`")
	if split < 0 {
		t.Fatal("BACKENDS.md interface section has no Stream marker — format drifted?")
	}
	parse := func(part string) map[string]bool {
		set := map[string]bool{}
		for _, m := range methodRowRe.FindAllStringSubmatch(part, -1) {
			set[m[1]] = true
		}
		return set
	}
	backend, stream = parse(section[:split]), parse(section[split:])
	if len(backend) == 0 || len(stream) == 0 {
		t.Fatalf("parsed %d backend / %d stream method rows from BACKENDS.md — format drifted?", len(backend), len(stream))
	}
	return backend, stream
}

// docCapsMatrix parses the "## Capability matrix" rows into
// name -> Caps, reading the yes/no cells.
func docCapsMatrix(t *testing.T) map[string]recognizer.Caps {
	t.Helper()
	raw, err := os.ReadFile("../../BACKENDS.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)
	start := strings.Index(doc, "## Capability matrix")
	if start < 0 {
		t.Fatal("BACKENDS.md has no \"## Capability matrix\" section — format drifted?")
	}
	section := doc[start:]
	if end := strings.Index(section[2:], "\n## "); end >= 0 {
		section = section[:end+2]
	}
	matrix := map[string]recognizer.Caps{}
	for _, line := range strings.Split(section, "\n") {
		cells := strings.Split(strings.Trim(line, "| "), "|")
		if len(cells) != 3 {
			continue
		}
		name := strings.TrimSpace(cells[0])
		if name == "backend" || strings.HasPrefix(name, "-") {
			continue // header and separator rows
		}
		matrix[name] = recognizer.Caps{
			Name:             name,
			Eager:            strings.TrimSpace(cells[1]) == "yes",
			DegradedFallback: strings.TrimSpace(cells[2]) == "yes",
		}
	}
	if len(matrix) == 0 {
		t.Fatal("no capability rows parsed from BACKENDS.md — format drifted?")
	}
	return matrix
}

// checkMethodSet compares a documented method set against an interface
// type's method set, both directions.
func checkMethodSet(t *testing.T, label string, typ reflect.Type, doc map[string]bool) {
	t.Helper()
	for i := 0; i < typ.NumMethod(); i++ {
		if name := typ.Method(i).Name; !doc[name] {
			t.Errorf("%s.%s exists on the interface but is not documented in BACKENDS.md", label, name)
		}
	}
	for name := range doc {
		if _, ok := typ.MethodByName(name); !ok {
			t.Errorf("BACKENDS.md documents %s.%s, which does not exist on the interface", label, name)
		}
	}
}

// TestBackendsDocMatchesInterface is the bidirectional machine check
// described in BACKENDS.md's preamble.
func TestBackendsDocMatchesInterface(t *testing.T) {
	backendDoc, streamDoc := docMethodSets(t)
	checkMethodSet(t, "Backend", reflect.TypeOf((*recognizer.Backend)(nil)).Elem(), backendDoc)
	checkMethodSet(t, "Stream", reflect.TypeOf((*recognizer.Stream)(nil)).Elem(), streamDoc)

	// Train one of each backend on a small synthetic set and compare the
	// live Caps against the documented matrix, cell by cell.
	set, _ := synth.NewGenerator(synth.DefaultParams(1)).Set("caps", synth.UDClasses(), 5)
	eagerRec, _, err := eager.Train(set, eager.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tmplRec, err := template.Train(set, template.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	live := map[string]recognizer.Caps{}
	for _, b := range []recognizer.Backend{eagerRec, tmplRec} {
		live[b.Caps().Name] = b.Caps()
	}

	matrix := docCapsMatrix(t)
	for name, want := range matrix {
		got, ok := live[name]
		if !ok {
			t.Errorf("BACKENDS.md matrix lists backend %q, which no trained backend reports", name)
			continue
		}
		if got != want {
			t.Errorf("backend %q: live Caps %+v != documented %+v", name, got, want)
		}
	}
	for name := range live {
		if _, ok := matrix[name]; !ok {
			t.Errorf("backend %q is not in BACKENDS.md's capability matrix", name)
		}
	}
}
