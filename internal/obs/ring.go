package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// Event is one trace entry: a named occurrence with an optional free-form
// detail (session ID, class name, ...). Events are immutable once
// emitted; Seq is a global per-ring sequence number, At a wall-clock
// unix-nanosecond timestamp.
type Event struct {
	Seq    uint64 `json:"seq"`
	At     int64  `json:"at"`
	Name   string `json:"name"`
	Detail string `json:"detail,omitempty"`
}

// Ring is a lock-free bounded event trace: the last Cap events emitted,
// oldest overwritten first. Writers claim a slot with one atomic add and
// publish an immutable Event through an atomic pointer, so emission
// never blocks and never tears; readers (Events, snapshots) see a
// consistent best-effort view. All methods are safe for concurrent use
// and no-ops on a nil receiver.
type Ring struct {
	slots []atomic.Pointer[Event]
	next  atomic.Uint64
}

// defaultRingCap is the trace capacity used when a ring is registered
// with a non-positive capacity.
const defaultRingCap = 1024

func newRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = defaultRingCap
	}
	return &Ring{slots: make([]atomic.Pointer[Event], capacity)}
}

// Emit appends one event to the trace, overwriting the oldest entry when
// the ring is full. No-op on a nil receiver.
func (r *Ring) Emit(name, detail string) {
	if r == nil {
		return
	}
	seq := r.next.Add(1) - 1
	e := &Event{Seq: seq, At: time.Now().UnixNano(), Name: name, Detail: detail}
	r.slots[seq%uint64(len(r.slots))].Store(e)
}

// Cap returns the ring's capacity; 0 on a nil receiver.
func (r *Ring) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Events returns the retained events in sequence order (oldest first).
// The view is best-effort under concurrent emission: an event being
// overwritten at read time appears either as its old or its new value,
// never torn. Returns nil on a nil receiver.
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		if e := r.slots[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// TraceSnap is the point-in-time state of one trace ring inside a
// Snapshot: its capacity, the total number of events ever emitted, and
// the retained tail in sequence order.
type TraceSnap struct {
	Name    string  `json:"name"`
	Cap     int     `json:"cap"`
	Emitted uint64  `json:"emitted"`
	Events  []Event `json:"events"`
}

func (r *Ring) snapshot(name string) TraceSnap {
	return TraceSnap{Name: name, Cap: r.Cap(), Emitted: r.next.Load(), Events: r.Events()}
}
