// Package nopanic is a fixture for the nopanic analyzer. The test
// registers this package's import path as protected.
package nopanic

import "errors"

// Direct panic in an exported function: flagged.
func Exported(x int) int {
	if x < 0 {
		panic("negative") // want `panic reachable from exported function Exported`
	}
	return x
}

// Panic reached through an unexported helper: flagged at the panic site.
func ExportedIndirect(x int) int {
	return helper(x)
}

func helper(x int) int {
	if x < 0 {
		panic("negative via helper") // want `panic reachable from exported function`
	}
	return x
}

// Panic in an unexported function nobody exported reaches: not flagged.
func orphan() {
	panic("unreachable from the API")
}

// Exported function returning an error instead: clean.
func Checked(x int) (int, error) {
	if x < 0 {
		return 0, errors.New("negative")
	}
	return x, nil
}

// Allowlisted invariant guard: suppressed by the directive.
func Guarded(n int) int {
	if n <= 0 {
		//lint:ignore nopanic fixture invariant guard, not data-reachable
		panic("non-positive dimension")
	}
	return n
}

// T is exported; its exported method panics via a method call: flagged.
type T struct{ v int }

// Get panics through another method.
func (t *T) Get() int { return t.check() }

func (t *T) check() int {
	if t.v < 0 {
		panic("bad state") // want `panic reachable from exported function`
	}
	return t.v
}

// unexportedType's exported-looking method is not API surface: not flagged.
type hidden struct{}

func (hidden) Boom() { panic("not exported API") }
