package lint

import (
	"go/ast"
	"go/types"
)

// Atomicsnap enforces the serve engine's recognizer-swap contract: within
// one function, an atomic.Pointer is Loaded at most once — the snapshot —
// and the field is never touched except through its atomic methods. Two
// Loads in one function can observe two different values across a
// concurrent Swap, silently mixing model generations in a single
// decision; a direct read or &-capture of the field bypasses the atomic
// protocol entirely.
//
// Call sites inside loops count once: the check is per static call site,
// which permits CAS retry loops. Store/Swap/CompareAndSwap alongside one
// Load are legal (that is the swap protocol itself). _test.go files are
// exempt.
var Atomicsnap = &Analyzer{
	Name: "atomicsnap",
	Doc: "flag functions that Load an atomic.Pointer more than once or mix " +
		"atomic access with direct field access.",
	Run: runAtomicsnap,
}

// atomicMethods are the sanctioned accessors of an atomic.Pointer.
var atomicMethods = map[string]bool{
	"Load": true, "Store": true, "Swap": true, "CompareAndSwap": true,
}

// isAtomicPointer reports whether t is sync/atomic's Pointer[T].
func isAtomicPointer(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pointer" && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

func runAtomicsnap(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkAtomicScope(pass, body)
			}
			return true
		})
	}
	return nil
}

func checkAtomicScope(pass *Pass, body *ast.BlockStmt) {
	// Receiver expressions of sanctioned atomic method calls.
	sanctioned := map[ast.Expr]bool{}
	type chainUse struct {
		loads  []ast.Expr
		direct []ast.Expr
	}
	uses := map[string]*chainUse{}
	var order []string
	use := func(chain string) *chainUse {
		u := uses[chain]
		if u == nil {
			u = &chainUse{}
			uses[chain] = u
			order = append(order, chain)
		}
		return u
	}
	walkScope(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !atomicMethods[sel.Sel.Name] {
			return
		}
		if tv, ok := pass.Info.Types[sel.X]; !ok || !tv.IsValue() || !isAtomicPointer(tv.Type) {
			return
		}
		chain := renderChain(sel.X)
		if chain == "" {
			return // indexed or computed receiver (e.g. ring.slots[i]); out of scope
		}
		sanctioned[sel.X] = true
		if sel.Sel.Name == "Load" {
			u := use(chain)
			u.loads = append(u.loads, sel.X)
		} else {
			use(chain)
		}
	})
	walkScope(body, func(n ast.Node) {
		e, ok := n.(ast.Expr)
		if !ok || sanctioned[e] {
			return
		}
		// Only value uses count: atomic.Pointer[T] also appears as a type
		// expression (in make, conversions, field declarations).
		if tv, ok := pass.Info.Types[e]; !ok || !tv.IsValue() || !isAtomicPointer(tv.Type) {
			return
		}
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if chain := renderChain(x); chain != "" {
				u := use(chain)
				u.direct = append(u.direct, e)
			}
		case *ast.Ident:
			// The Sel of a sanctioned selector and declaration-side idents
			// resolve through Defs; only genuine uses count.
			if obj := pass.Info.Uses[x]; obj != nil && !isSelOfSelector(body, x) {
				u := use(x.Name)
				u.direct = append(u.direct, e)
			}
		}
	})
	for _, chain := range order {
		u := uses[chain]
		if len(u.loads) > 1 {
			pass.Reportf(u.loads[1].Pos(),
				"atomic pointer %s is Loaded %d times in one function; take one snapshot (v := %s.Load()) and reuse it",
				chain, len(u.loads), chain)
		}
		for _, d := range u.direct {
			pass.Reportf(d.Pos(),
				"atomic pointer %s accessed outside its atomic methods; use Load/Store/Swap/CompareAndSwap",
				chain)
		}
	}
}

// isSelOfSelector reports whether id is the Sel field of some selector
// expression in body (x.id), which is a field reference, not an
// independent use of a variable named id.
func isSelOfSelector(body *ast.BlockStmt, id *ast.Ident) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel == id {
			found = true
		}
		return !found
	})
	return found
}
