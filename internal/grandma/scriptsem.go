package grandma

import (
	"fmt"

	"repro/internal/script"
)

// ScriptSemantics compiles the paper's three-expression semantics form —
// recog / manip / done source strings in GRANDMA's message language — into
// a Semantics value. Before each evaluation the gestural attributes are
// bound into the environment exactly as §3.2 describes ("the values of
// many gestural attributes are lazily bound to variables in the
// environment"); the recog result is stored in the variable "recog".
//
// bind, if non-nil, is called once per interaction (at recog time) to
// install application objects — typically the view — into the environment.
// Evaluation errors are reported through onErr (or ignored when nil):
// gesture semantics run inside the event loop, where there is no caller to
// return an error to.
func ScriptSemantics(recogSrc, manipSrc, doneSrc string, bind func(a *Attrs, env *script.Env), onErr func(error)) (*Semantics, error) {
	recogP, err := script.Parse(recogSrc)
	if err != nil {
		return nil, fmt.Errorf("grandma: recog: %w", err)
	}
	manipP, err := script.Parse(manipSrc)
	if err != nil {
		return nil, fmt.Errorf("grandma: manip: %w", err)
	}
	doneP, err := script.Parse(doneSrc)
	if err != nil {
		return nil, fmt.Errorf("grandma: done: %w", err)
	}
	report := func(e error) {
		if e != nil && onErr != nil {
			onErr(e)
		}
	}

	// One environment per interaction, created at recog time and reused by
	// manip/done so variables (like recog) persist across the phases.
	var env *script.Env
	bindAttrs := func(a *Attrs) {
		env.SetAttr("startX", a.StartX)
		env.SetAttr("startY", a.StartY)
		env.SetAttr("startT", a.StartT)
		env.SetAttr("currentX", a.CurrentX)
		env.SetAttr("currentY", a.CurrentY)
		env.SetAttr("currentT", a.CurrentT)
		b := a.Bounds()
		env.SetAttr("minX", b.MinX)
		env.SetAttr("minY", b.MinY)
		env.SetAttr("maxX", b.MaxX)
		env.SetAttr("maxY", b.MaxY)
		env.SetAttr("nPoints", float64(len(a.GesturePoints)))
		// "There are many other attributes available to the semantics
		// writer" (§3.2) — the ones the modified GDP maps to application
		// parameters, plus end position and duration.
		env.SetAttr("initialAngle", a.InitialAngle())
		env.SetAttr("length", a.GestureLength())
		env.SetAttr("duration", a.GesturePoints.Duration())
		if n := len(a.GesturePoints); n > 0 {
			env.SetAttr("endX", a.GesturePoints[n-1].X)
			env.SetAttr("endY", a.GesturePoints[n-1].Y)
		} else {
			env.SetAttr("endX", a.CurrentX)
			env.SetAttr("endY", a.CurrentY)
		}
	}

	return &Semantics{
		Recog: func(a *Attrs) any {
			env = script.NewEnv()
			if bind != nil {
				bind(a, env)
			}
			bindAttrs(a)
			v, err := recogP.Eval(env)
			report(err)
			env.SetVar("recog", v)
			return v
		},
		Manip: func(a *Attrs) {
			if env == nil {
				return
			}
			bindAttrs(a)
			_, err := manipP.Eval(env)
			report(err)
		},
		Done: func(a *Attrs) {
			if env == nil {
				return
			}
			bindAttrs(a)
			_, err := doneP.Eval(env)
			report(err)
		},
	}, nil
}
