package wire

import (
	"fmt"
	"io"
)

// Response type bytes: ASCII ACK for a per-frame acknowledgement, ASCII
// NAK for a connection-fatal error.
const (
	respAck   = 0x06
	respFatal = 0x15
)

// NackCode is the wire form of one refused event's reason. Codes map
// the serving engine's typed Submit errors one-to-one; see
// OBSERVABILITY.md ("Wire ingestion") for the counter each feeds.
type NackCode uint8

// NACK codes. Zero is reserved (an absent code).
const (
	// NackBadEvent maps serve.ErrBadEvent: the event failed Submit-time
	// validation and retrying cannot help.
	NackBadEvent NackCode = 1
	// NackQueueFull maps a bare serve.ErrQueueFull: the shard queue was
	// full and the ingest policy chose not to retry.
	NackQueueFull NackCode = 2
	// NackShed maps serve.ErrShed: the ingest Submitter retried its full
	// budget and gave up.
	NackShed NackCode = 3
	// NackClosed maps serve.ErrClosed: the engine is shutting down; the
	// server closes the connection after the response.
	NackClosed NackCode = 4
	// NackOverload maps serve.ErrOverloaded: the admission controller is
	// shedding early under sustained queue delay. The ACK carries a
	// retry-after hint; the client should pause that long before
	// resubmitting.
	NackOverload NackCode = 5
)

// String names the code ("bad_event", "queue_full", "shed", "closed",
// "overload"); unknown values render as "nack(N)".
func (c NackCode) String() string {
	switch c {
	case NackBadEvent:
		return "bad_event"
	case NackQueueFull:
		return "queue_full"
	case NackShed:
		return "shed"
	case NackClosed:
		return "closed"
	case NackOverload:
		return "overload"
	}
	return fmt.Sprintf("nack(%d)", uint8(c))
}

// FatalCode is the wire form of a connection-fatal condition: the server
// sends it in a NAK response and closes the connection.
type FatalCode uint8

// Fatal codes. Zero is reserved.
const (
	// FatalCorrupt reports an undecodable frame (ErrCorrupt); the
	// connection's interning state is unrecoverable.
	FatalCorrupt FatalCode = 1
	// FatalOversized reports a frame beyond the size limits
	// (ErrOversized).
	FatalOversized FatalCode = 2
	// FatalTruncated reports a stream that ended mid-frame
	// (ErrTruncated).
	FatalTruncated FatalCode = 3
	// FatalClosed reports an ingest server that is shutting down.
	FatalClosed FatalCode = 4
	// FatalVersion reports a frame carrying a wire format version the
	// server does not speak (ErrVersion) — the client must upgrade (or
	// downgrade) before reconnecting.
	FatalVersion FatalCode = 5
	// FatalOverloaded reports an accept-gate rejection: the server is at
	// its connection limit and refused this connection before reading a
	// single frame. Reconnect after a backoff.
	FatalOverloaded FatalCode = 6
	// FatalTimeout reports an idle teardown: the connection sent nothing
	// for longer than the server's idle timeout (slow-loris protection).
	// Reconnect and resend anything unacknowledged.
	FatalTimeout FatalCode = 7
)

// String names the code ("corrupt", "oversized", "truncated", "closed",
// "version", "overloaded", "timeout"); unknown values render as
// "fatal(N)".
func (c FatalCode) String() string {
	switch c {
	case FatalCorrupt:
		return "corrupt"
	case FatalOversized:
		return "oversized"
	case FatalTruncated:
		return "truncated"
	case FatalClosed:
		return "closed"
	case FatalVersion:
		return "version"
	case FatalOverloaded:
		return "overloaded"
	case FatalTimeout:
		return "timeout"
	}
	return fmt.Sprintf("fatal(%d)", uint8(c))
}

// Nack is one refused event within a frame: the 0-based event index and
// the typed reason.
type Nack struct {
	// Index is the event's position within its frame.
	Index uint32
	// Code is the refusal reason.
	Code NackCode
}

// MaxRetryAfterMS caps the retry-after hint an ACK may carry; a larger
// value is rejected as corruption when decoding a response.
const MaxRetryAfterMS = 60_000

// AppendAck appends one ACK response (possibly carrying NACKs and a
// retry-after hint) to dst. The layout is the ACK byte, a uvarint
// retry-after hint in milliseconds (0 = none; only meaningful alongside
// overload NACKs), a uvarint NACK count, then per refused event its
// frame index (uvarint) and code byte. An empty nacks slice with no
// hint is the 3-byte all-accepted response. retryAfterMS values outside
// [0, MaxRetryAfterMS] are clamped so a response is always decodable.
func AppendAck(dst []byte, nacks []Nack, retryAfterMS int64) []byte {
	if retryAfterMS < 0 {
		retryAfterMS = 0
	}
	if retryAfterMS > MaxRetryAfterMS {
		retryAfterMS = MaxRetryAfterMS
	}
	dst = append(dst[:len(dst)], respAck)
	dst = appendUvarint(dst, uint64(retryAfterMS))
	dst = appendUvarint(dst, uint64(len(nacks)))
	for _, n := range nacks {
		dst = appendUvarint(dst, uint64(n.Index))
		dst = append(dst[:len(dst)], byte(n.Code))
	}
	return dst
}

// AppendFatal appends one NAK (connection-fatal) response to dst.
func AppendFatal(dst []byte, code FatalCode) []byte {
	return append(dst[:len(dst)], respFatal, byte(code))
}

// Response is one decoded server response: either a per-frame ACK with
// its NACK list, or a connection-fatal NAK.
type Response struct {
	// Fatal reports a NAK response; Code then says why and the
	// connection is dead.
	Fatal bool
	// Code is the fatal reason (only when Fatal).
	Code FatalCode
	// Nacks are the frame's refused events (only when !Fatal), in index
	// order as the server emitted them.
	Nacks []Nack
	// RetryAfterMS is the server's pacing hint in milliseconds (only
	// when !Fatal). Zero means none; nonzero accompanies overload NACKs
	// and asks the client to pause that long before the next frame.
	RetryAfterMS int64
}

// ReadResponse reads one response off r, reusing nackBuf for the NACK
// list. io.EOF at a response boundary passes through; mid-response ends
// are ErrTruncated.
func ReadResponse(r io.ByteReader, nackBuf []Nack) (Response, error) {
	t, err := r.ReadByte()
	if err != nil {
		if err == io.EOF {
			return Response{}, io.EOF
		}
		return Response{}, fmt.Errorf("%w: response type: %v", ErrTruncated, err)
	}
	switch t {
	case respFatal:
		c, err := r.ReadByte()
		if err != nil {
			return Response{}, fmt.Errorf("%w: fatal code: %v", ErrTruncated, err)
		}
		return Response{Fatal: true, Code: FatalCode(c)}, nil
	case respAck:
		retry, err := readStreamUvarint(r)
		if err != nil {
			return Response{}, err
		}
		if retry > MaxRetryAfterMS {
			return Response{}, fmt.Errorf("%w: retry-after %dms exceeds %dms", ErrCorrupt, retry, MaxRetryAfterMS)
		}
		n, err := readStreamUvarint(r)
		if err != nil {
			return Response{}, err
		}
		if n > MaxBatch {
			return Response{}, fmt.Errorf("%w: %d NACKs exceeds MaxBatch %d", ErrOversized, n, MaxBatch)
		}
		nacks := nackBuf[:0]
		for i := uint64(0); i < n; i++ {
			idx, err := readStreamUvarint(r)
			if err != nil {
				return Response{}, err
			}
			if idx > MaxBatch {
				return Response{}, fmt.Errorf("%w: NACK index %d exceeds MaxBatch %d", ErrCorrupt, idx, MaxBatch)
			}
			c, err := r.ReadByte()
			if err != nil {
				return Response{}, fmt.Errorf("%w: NACK code: %v", ErrTruncated, err)
			}
			nacks = append(nacks, Nack{Index: uint32(idx), Code: NackCode(c)})
		}
		return Response{Nacks: nacks, RetryAfterMS: int64(retry)}, nil
	}
	return Response{}, fmt.Errorf("%w: unknown response type %#02x", ErrCorrupt, t)
}
