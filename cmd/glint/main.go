// Command glint runs the repository's domain-specific static-analysis
// suite (internal/lint) over Go packages:
//
//	go run ./cmd/glint ./...
//	go run ./cmd/glint -escape ./...
//
// Per-package analyzers run first, then the module-level analyzers (the
// hotalloc allocation gate, which follows //glint:hotpath call chains
// across packages). With -escape, glint additionally builds the patterns
// with `go build -gcflags=-m` and cross-checks the compiler's heap-escape
// diagnostics against the same hot regions, so a compiler-confirmed
// escape on the hot path fails the run. One //lint:ignore allowlist spans
// all stages; a directive that suppressed nothing in any of them is
// reported as stale (unuseddirective).
//
// It prints one line per finding (or one JSON record per line with
// -json) and exits 1 when there are findings, 2 on a load or internal
// error, and 0 on a clean run. The analyzers and the allowlist mechanism
// are documented in DESIGN.md ("Static analysis & invariants").
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("glint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("dir", ".", "directory to resolve package patterns from")
	jsonOut := fs.Bool("json", false, "emit findings as newline-delimited JSON records")
	escape := fs.Bool("escape", false, "cross-check compiler escape analysis (go build -gcflags=-m) against //glint:hotpath regions")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.All()
	modAnalyzers := lint.ModuleAll()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-15s %s\n", a.Name, a.Doc)
		}
		for _, a := range modAnalyzers {
			fmt.Fprintf(stdout, "%-15s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stdout, "%-15s %s\n", "escape",
			"(with -escape) compiler-confirmed heap escapes inside //glint:hotpath regions.")
		fmt.Fprintf(stdout, "%-15s %s\n", "unuseddirective",
			"//lint:ignore directives that suppressed nothing in this run.")
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "glint: %v\n", err)
		return 2
	}
	if len(pkgs) == 0 {
		return 0
	}
	fset := pkgs[0].Fset // the loader shares one FileSet across packages
	module, err := lint.ModulePath(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "glint: %v\n", err)
		return 2
	}

	// One directive collection spans every stage, so usage is judged only
	// after package analyzers, module analyzers, and the escape
	// cross-check have all had their chance to consume a suppression.
	dirs := lint.NewDirectives()
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		dirs.Collect(pkg.Fset, pkg.Files)
		raw, err := lint.Analyze(pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info, analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "glint: %s: %v\n", pkg.ImportPath, err)
			return 2
		}
		diags = append(diags, raw...)
	}

	mdiags, err := lint.RunModuleAnalyzers(fset, pkgs, module, modAnalyzers)
	if err != nil {
		fmt.Fprintf(stderr, "glint: %v\n", err)
		return 2
	}
	diags = append(diags, mdiags...)
	for _, a := range modAnalyzers {
		ran[a.Name] = true
	}

	if *escape {
		ediags, warnings, err := lint.RunEscape(*dir, patterns)
		if err != nil {
			fmt.Fprintf(stderr, "glint: %v\n", err)
			return 2
		}
		for _, w := range warnings {
			fmt.Fprintf(stderr, "glint: escape: %s\n", w)
		}
		regions := lint.HotpathRegions(fset, pkgs, module)
		diags = append(diags, lint.CrossCheckEscapes(ediags, regions)...)
		ran["escape"] = true
	}

	diags = dirs.Apply(diags)
	diags = append(diags, dirs.Unused(ran)...)
	lint.SortDiagnostics(diags)

	if *jsonOut {
		if err := lint.EncodeDiagnostics(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "glint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "glint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
