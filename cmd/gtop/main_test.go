package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/slo"
)

// testUpstream builds an httptest server exposing /metrics and /slo over
// a live registry populated with windowed traffic and one gesture span —
// a miniature gserve for gtop to scrape.
func testUpstream(t *testing.T) *httptest.Server {
	t.Helper()
	reg := obs.New()
	wc := reg.WindowedCounter("window.serve.events.submitted", 0, 0)
	wh := reg.WindowedHistogram("window.eager.decide_ns", obs.LatencyBuckets(), 0, 0)
	for i := 0; i < 120; i++ {
		wc.Inc()
		wh.Observe(float64(20_000 + i*100))
	}
	sp := reg.Spans("gesture.spans", 0).Start("gesture")
	sp.SetAttr("session", "sess-01")
	sp.SetAttr("class", "line")
	sp.SetAttr("outcome", "completed")
	sp.End()
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Handler(reg))
	mux.Handle("/slo", slo.Handler(slo.New(reg, slo.DefaultObjectives(), nil)))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestOnceSnapshot: gtop -once against a live upstream renders every
// dashboard section with the instruments and objectives visible.
func TestOnceSnapshot(t *testing.T) {
	srv := testUpstream(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-once", "-addr", srv.URL}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"RATES", "LATENCY", "SLO", "TOP SESSIONS",
		"window.serve.events.submitted",
		"window.eager.decide_ns",
		"decide_p99", "wire_nack_ratio",
		"sess-01", "completed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[2J") {
		t.Error("-once frame must not clear the screen")
	}
}

// TestUnreachableServer: a dead upstream is a diagnostic and exit 1, not
// a hang or a panic.
func TestUnreachableServer(t *testing.T) {
	srv := testUpstream(t)
	srv.Close()
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-once", "-addr", srv.URL}, &stdout, &stderr); code != 1 {
		t.Fatalf("run = %d, want 1", code)
	}
	if stderr.Len() == 0 {
		t.Error("no diagnostic for unreachable server")
	}
}

// TestFlagValidation: nonsense flags exit 2 before any network work.
func TestFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-interval", "0s"},
		{"-window", "-1m"},
		{"-top", "-1"},
		{"-interval", "bogus"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}

// TestSparkline pins the trend rendering: current slot rightmost, empty
// slots blank, levels scaled to the busiest slot.
func TestSparkline(t *testing.T) {
	w := obs.WindowSnap{
		SlotNS: int64(10 * time.Second),
		Slots:  180,
		Epoch:  10,
		Live: []obs.WindowSlotSnap{
			{Epoch: 8, Count: 4},
			{Epoch: 10, Count: 8},
		},
	}
	got := sparkline(w, 4)
	if len([]rune(got)) != 4 {
		t.Fatalf("sparkline length = %d, want 4", len([]rune(got)))
	}
	r := []rune(got)
	if r[0] != ' ' || r[2] != ' ' {
		t.Errorf("empty slots should be blank: %q", got)
	}
	if r[3] != sparkRunes[len(sparkRunes)-1] {
		t.Errorf("busiest slot should be full: %q", got)
	}
	if r[1] == ' ' || r[1] >= r[3] {
		t.Errorf("half-loaded slot should render between empty and full: %q", got)
	}
	if sparkline(w, 0) != "" || sparkline(obs.WindowSnap{}, 4) != "" {
		t.Error("degenerate windows should render empty")
	}
}

// TestFmtNS pins the unit thresholds.
func TestFmtNS(t *testing.T) {
	for _, tc := range []struct {
		ns   float64
		want string
	}{
		{0, "-"},
		{512, "512ns"},
		{2_500, "2.5µs"},
		{3_400_000, "3.4ms"},
		{2_250_000_000, "2.25s"},
	} {
		if got := fmtNS(tc.ns); got != tc.want {
			t.Errorf("fmtNS(%v) = %q, want %q", tc.ns, got, tc.want)
		}
	}
}
