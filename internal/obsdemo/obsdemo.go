// Package obsdemo builds small, fully instrumented, deterministic
// train-and-serve workloads over the paper's GDP gesture set. It is the
// shared substrate behind three consumers:
//
//   - cmd/gserve uses New to boot an instrumented engine with a model to
//     serve and a registry to expose over HTTP;
//   - cmd/gbench -obs uses Run to embed a populated metrics snapshot in
//     its JSON artifact;
//   - the OBSERVABILITY.md contract test uses Run to obtain a snapshot
//     that has every documented metric registered, and checks the
//     document and the snapshot against each other.
//
// Everything seeded is deterministic: for a fixed seed the trained
// recognizer, the replayed traffic, and therefore the set of metric
// names, bucket boundaries, and all count-valued metrics are identical
// run over run (latency-valued histogram contents of course vary).
package obsdemo

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net"
	"runtime"
	"time"

	"repro/internal/eager"
	"repro/internal/fault"
	"repro/internal/flight"
	"repro/internal/geom"
	"repro/internal/ingest"
	"repro/internal/multipath"
	"repro/internal/netfault"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/slo"
	"repro/internal/synth"
	"repro/internal/template"
	"repro/internal/wire"
)

// TrainExamples is the per-class training-set size used by New and Run —
// small enough that a demo trains in well under a second, large enough
// that the GDP classes separate cleanly.
const TrainExamples = 6

// New trains a GDP recognizer with full training instrumentation
// attached to a fresh registry and returns both. The recognizer is
// instrumented too (eager.Train does that when Options.Obs is set), so
// sessions created from it — directly or through a serve.Engine sharing
// the same registry — record into the returned registry.
func New(seed int64) (*obs.Registry, *eager.Recognizer, error) {
	reg := obs.New()
	gen := synth.NewGenerator(synth.DefaultParams(seed))
	set, _ := gen.Set("gdp-train", synth.GDPClasses(), TrainExamples)
	opts := eager.DefaultOptions()
	opts.Obs = reg
	rec, _, err := eager.Train(set, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("obsdemo: train: %w", err)
	}
	return reg, rec, nil
}

// SpanCapacity is the gesture.spans buffer capacity the demo
// pre-registers (first registration wins over the serve engine's
// default): generous headroom over the workload's span count, so no
// record is ever evicted and the set of span names in the snapshot is
// deterministic.
const SpanCapacity = 32768

// FlightCapacity is the demo flight recorder's ring capacity — larger
// than the session count, so every captured gesture survives in the
// dump.
const FlightCapacity = 64

// Run executes the full demo workload and returns the populated
// registry: train (New), serve a burst of replayed GDP interactions
// through an instrumented multi-shard engine (with span tracing and a
// keep-everything flight recorder attached), exercise the swap and
// swap-rejection paths, leave one session to be drained at Close and one
// too short to ever fire eagerly (so the mouse-up "classify" span is
// exercised), run the scripted failure segment (a poisoned stroke that
// degrades, a dispatch panic that quarantines, a stalled session the
// idle reaper collects), replay gestures through Recognizer.Run for the
// commit-fraction histogram, and poison-then-Reset one span-traced
// streaming session. After Run, every metric and span name in the
// OBSERVABILITY.md contract is present in the snapshot.
func Run(seed int64) (*obs.Registry, error) {
	reg, _, _, err := demo(seed)
	return reg, err
}

// Flight runs the same workload as Run and returns the trained
// recognizer together with the populated flight recorder — the pair
// cmd/greplay -record saves so a later replay can be checked against the
// exact model that produced the captures.
func Flight(seed int64) (*eager.Recognizer, *flight.Recorder, error) {
	_, rec, fr, err := demo(seed)
	return rec, fr, err
}

// demo is the shared workload behind Run and Flight.
func demo(seed int64) (*obs.Registry, *eager.Recognizer, *flight.Recorder, error) {
	reg, rec, err := New(seed)
	if err != nil {
		return nil, nil, nil, err
	}

	// Pre-register the span buffer with headroom before the engine's
	// default-capacity registration (first registration wins), keeping the
	// demo's span-name set eviction-free and deterministic.
	spans := reg.Spans("gesture.spans", SpanCapacity)

	fr := flight.NewRecorder(flight.Options{Capacity: FlightCapacity, Trigger: flight.TriggerAlways})
	// The fault script drives the demo's failure segment: one session
	// poisoned mid-stroke (degraded classification), one panicked at
	// dispatch (quarantine). Index 3 is below MinSubgesture, so neither
	// session can have decided eagerly before the fault lands.
	script := fault.NewScript().
		Set("demo-fault-degraded", 3, fault.KindPoison).
		Set("demo-fault-panic", 3, fault.KindPanic)
	script.Instrument(reg)
	clk := fault.NewManualClock(time.Unix(1_700_000_000, 0))
	e, err := serve.New(rec, serve.Options{
		Shards:       minInt(4, runtime.GOMAXPROCS(0)),
		QueueDepth:   64,
		Obs:          reg,
		Flight:       fr,
		Fault:        script,
		Clock:        clk,
		IdleTimeout:  time.Second,
		ReapInterval: -1, // reap on demand only; the clock is virtual
	})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("obsdemo: %w", err)
	}
	sub := serve.NewSubmitter(e, serve.SubmitterOptions{Obs: reg})

	gen := synth.NewGenerator(synth.DefaultParams(seed + 1))
	classes := synth.GDPClasses()
	const sessions = 24
	for i := 0; i < sessions; i++ {
		s := gen.Sample(classes[i%len(classes)])
		if err := play(sub, fmt.Sprintf("demo-%03d", i), s.G.Points, true); err != nil {
			return nil, nil, nil, err
		}
	}

	// Swap paths: a rejected nil swap, then a real (self-)swap — the
	// engine republishes the same immutable snapshot, which exercises the
	// full code path without a second training run.
	e.Swap(nil)
	e.Swap(rec)

	// One stroke too short to reach MinSubgesture: eager never fires, so
	// the mouse-up full classification runs (the "classify" span).
	s := gen.Sample(classes[1])
	short := s.G.Points
	if n := rec.Opts.MinSubgesture - 1; len(short) > n {
		short = short[:n]
	}
	if err := play(sub, "demo-short", short, true); err != nil {
		return nil, nil, nil, err
	}

	// Failure segment, driven by the fault script: one poisoned stroke
	// that degrades (full classifier on the finite prefix), one dispatch
	// panic that quarantines its session while the shard keeps serving,
	// and one stalled session the idle reaper collects after the virtual
	// clock jumps past the deadline.
	s = gen.Sample(classes[2])
	if err := play(sub, "demo-fault-degraded", s.G.Points, true); err != nil {
		return nil, nil, nil, err
	}
	s = gen.Sample(classes[3])
	if err := play(sub, "demo-fault-panic", s.G.Points, true); err != nil {
		return nil, nil, nil, err
	}
	s = gen.Sample(classes[4])
	if err := play(sub, "demo-fault-stall", s.G.Points, false); err != nil {
		return nil, nil, nil, err
	}
	if err := e.Flush(); err != nil {
		return nil, nil, nil, fmt.Errorf("obsdemo: flush: %w", err)
	}
	clk.Advance(2 * time.Second)
	if _, err := e.Reap(); err != nil {
		return nil, nil, nil, fmt.Errorf("obsdemo: reap: %w", err)
	}

	// Wire ingestion segment: one gesture arrives over a real loopback
	// socket through internal/ingest (sharing the registry, so every
	// wire.* metric and the "wire.spans" buffer registers), one NaN
	// coordinate draws a deterministic bad-event NACK, and a second
	// connection sends garbage and is refused with a fatal response.
	if err := wireSegment(reg, e, gen.Sample(classes[5]).G.Points); err != nil {
		return nil, nil, nil, err
	}

	// Robustness segment: the scripted netfault kinds (netfault.injected.*),
	// a browned-out admission controller shedding over the wire
	// (serve.admit.*, wire.nacks.overload), an over-cap connection refused
	// (wire.connections.rejected), and an idle connection the watchdog
	// collects (wire.connections.idle_closed) — all exactly once, so the
	// counts stay deterministic.
	if err := robustnessSegment(reg, rec); err != nil {
		return nil, nil, nil, err
	}

	// One session left open (no FingerUp) so Close drains it.
	s = gen.Sample(classes[0])
	if err := play(sub, "demo-open", s.G.Points, false); err != nil {
		return nil, nil, nil, err
	}
	if err := e.Close(); err != nil {
		return nil, nil, nil, fmt.Errorf("obsdemo: close: %w", err)
	}

	// Replay through Run for the commit-fraction histogram (the paper's
	// eagerness measurement).
	gen = synth.NewGenerator(synth.DefaultParams(seed + 2))
	for i := 0; i < len(classes); i++ {
		sample := gen.Sample(classes[i])
		if _, _, err := rec.Run(sample.G); err != nil {
			return nil, nil, nil, fmt.Errorf("obsdemo: replay: %w", err)
		}
	}

	// Error path: a poisoned stroke (counted once) and its Reset, traced
	// directly (no engine) so the "poisoned" and "reset" span events are
	// in the buffer too.
	sess, err := rec.NewSession()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("obsdemo: %w", err)
	}
	root := spans.Start("gesture")
	root.SetAttr("session", "demo-poison")
	sess.SetSpan(root)
	for i := 0; i <= rec.Opts.MinSubgesture; i++ {
		sess.Add(geom.TimedPoint{X: math.NaN(), T: float64(i)})
	}
	sess.Reset()
	root.End()

	// Template-backend segment: the second recognizer backend serves a
	// burst through an engine selected via Options.Backend, sharing the
	// registry, then exercises its poison/degrade/reset and Run paths
	// directly — so every template.* metric in the OBSERVABILITY.md
	// contract registers with deterministic counts.
	if err := templateSegment(reg, seed); err != nil {
		return nil, nil, nil, err
	}

	// SLO segment: evaluate the default objectives over the windowed
	// instruments the workload populated, so every slo.* gauge in the
	// OBSERVABILITY.md contract registers.
	slo.New(reg, slo.DefaultObjectives(), clk).Evaluate()

	return reg, rec, fr, nil
}

// templateSegment trains the streaming template backend on the same GDP
// workload, replays a short burst through an Options.Backend-selected
// engine, and then drives one pooled session through the poisoned ->
// Degrade -> Reset lifecycle plus one Run replay. After it, all seven
// template.* metrics are non-zero and deterministic for a fixed seed.
func templateSegment(reg *obs.Registry, seed int64) error {
	classes := synth.GDPClasses()
	set, _ := synth.NewGenerator(synth.DefaultParams(seed)).Set("gdp-template", classes, TrainExamples)
	tmpl, err := template.Train(set, template.DefaultOptions())
	if err != nil {
		return fmt.Errorf("obsdemo: template: %w", err)
	}
	tmpl.Instrument(reg)

	e, err := serve.New(nil, serve.Options{Backend: tmpl, Shards: 2, QueueDepth: 64, Obs: reg})
	if err != nil {
		return fmt.Errorf("obsdemo: template: %w", err)
	}
	sub := serve.NewSubmitter(e, serve.SubmitterOptions{Obs: reg})
	gen := synth.NewGenerator(synth.DefaultParams(seed + 3))
	for i := 0; i < len(classes); i++ {
		s := gen.Sample(classes[i%len(classes)])
		if err := play(sub, fmt.Sprintf("demo-tmpl-%03d", i), s.G.Points, true); err != nil {
			return err
		}
	}
	if err := e.Close(); err != nil {
		return fmt.Errorf("obsdemo: template: close: %w", err)
	}

	// Poison -> Degrade -> Reset on a pooled session (template.session.
	// poisoned / .degraded / .resets), then one Run replay for the
	// commit-fraction histogram and the end-fire counter.
	ts, err := tmpl.NewSession()
	if err != nil {
		return fmt.Errorf("obsdemo: template: %w", err)
	}
	pts := gen.Sample(classes[0]).G.Points
	for _, p := range pts[:5] {
		if _, _, err := ts.Add(p); err != nil {
			return fmt.Errorf("obsdemo: template: %w", err)
		}
	}
	ts.Add(geom.TimedPoint{X: math.NaN(), T: pts[4].T + 1})
	if _, err := ts.Degrade(); err != nil {
		return fmt.Errorf("obsdemo: template: degrade: %w", err)
	}
	ts.Reset()
	if _, _, err := tmpl.Run(gen.Sample(classes[1]).G); err != nil {
		return fmt.Errorf("obsdemo: template: replay: %w", err)
	}
	return nil
}

// wireSegment replays one gesture over a real loopback socket through
// the wire-protocol ingest front end, exercising the accept path, the
// per-event NACK path (one NaN coordinate refused by Submit
// validation), and the fatal path (a garbage frame on a second
// connection). Counter-valued wire.* metrics end deterministic: one
// frame rejected, one bad-event NACK, two connections opened and
// closed.
func wireSegment(reg *obs.Registry, e *serve.Engine, g geom.Path) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("obsdemo: wire listen: %w", err)
	}
	ws := ingest.Serve(ln, e, ingest.Options{Obs: reg})
	defer ws.Close()

	fail := func(err error) error { return fmt.Errorf("obsdemo: wire: %w", err) }
	c, err := net.Dial("tcp", ws.Addr().String())
	if err != nil {
		return fail(err)
	}
	defer c.Close()
	br := bufio.NewReader(c)
	enc := wire.NewEncoder()
	events := make([]wire.Event, 0, len(g)+2)
	for i, p := range g {
		kind := wire.KindMove
		if i == 0 {
			kind = wire.KindDown
		}
		events = append(events, wire.Event{
			Session: "demo-wire", Kind: kind, X: p.X, Y: p.Y, TMicros: wire.Micros(p.T),
		})
	}
	last := g[len(g)-1]
	events = append(events, wire.Event{
		Session: "demo-wire", Kind: wire.KindUp, X: last.X, Y: last.Y, TMicros: wire.Micros(last.T + 0.01),
	})
	// One event that fails Submit validation: the frame decodes, the
	// event NACKs with wire.NackBadEvent.
	events = append(events, wire.Event{
		Session: "demo-wire-bad", Kind: wire.KindDown, X: math.NaN(), Y: 0, TMicros: wire.Micros(last.T + 0.02),
	})
	nacked := 0
	for len(events) > 0 {
		n := 8
		if n > len(events) {
			n = len(events)
		}
		frame, err := enc.AppendFrame(nil, events[:n])
		if err != nil {
			return fail(err)
		}
		if _, err := c.Write(frame); err != nil {
			return fail(err)
		}
		resp, err := wire.ReadResponse(br, nil)
		if err != nil {
			return fail(err)
		}
		if resp.Fatal {
			return fail(fmt.Errorf("unexpected fatal response %s", resp.Code))
		}
		nacked += len(resp.Nacks)
		events = events[n:]
	}
	if nacked != 1 {
		return fail(fmt.Errorf("%d NACKs, want exactly the bad-coordinate one", nacked))
	}

	// Fatal path: a second connection sends bytes that are not a frame.
	c2, err := net.Dial("tcp", ws.Addr().String())
	if err != nil {
		return fail(err)
	}
	defer c2.Close()
	if _, err := c2.Write([]byte("not a wire frame")); err != nil {
		return fail(err)
	}
	resp, err := wire.ReadResponse(bufio.NewReader(c2), nil)
	if err != nil {
		return fail(err)
	}
	if !resp.Fatal {
		return fail(fmt.Errorf("garbage frame drew non-fatal response %+v", resp))
	}
	return ws.Close()
}

// robustnessSegment populates the robustness-layer instruments with
// deterministic counts. Three sub-scenes: (1) a scripted fault of every
// netfault kind over an in-memory pipe — each injected exactly once, so
// every netfault.injected.* counter registers at 1 (total 7); (2) an
// admission controller pushed into brownout on a virtual clock at a
// full shed fraction, attached to an engine behind a wire listener —
// one event arrives over a real socket and is shed with an overload
// NACK carrying a retry-after hint (serve.admit.*,
// wire.nacks.overload); (3) the listener's self-defense: a second
// connection beyond MaxConns is refused with FatalOverloaded
// (wire.connections.rejected) and the first, now idle past the
// watchdog deadline on the virtual clock, is collected with a
// FatalTimeout (wire.connections.idle_closed).
func robustnessSegment(reg *obs.Registry, rec *eager.Recognizer) error {
	fail := func(err error) error { return fmt.Errorf("obsdemo: robustness: %w", err) }

	// Scene 1: every fault kind, scripted to an exact operation index so
	// the injection tallies are count-deterministic. Sleeps are virtual —
	// the stall and jitter kinds must not slow the demo down.
	script := netfault.NewScript().
		Set("demo-nf", netfault.DirRead, 0, netfault.KindShortRead).
		Set("demo-nf", netfault.DirWrite, 0, netfault.KindSplit).
		Set("demo-nf", netfault.DirWrite, 1, netfault.KindJitter).
		Set("demo-nf", netfault.DirWrite, 2, netfault.KindStall).
		Set("demo-nf", netfault.DirWrite, 3, netfault.KindCorrupt).
		Set("demo-nf", netfault.DirWrite, 4, netfault.KindTruncate).
		Set("demo-nf", netfault.DirWrite, 5, netfault.KindReset)
	script.SetSleep(func(time.Duration) {})
	script.Instrument(reg)
	a, b := net.Pipe()
	defer a.Close()
	fc := script.Conn(a, "demo-nf")
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer b.Close()
		if _, err := b.Write([]byte("ping")); err != nil {
			return
		}
		_, _ = io.Copy(io.Discard, b)
	}()
	buf := make([]byte, 16)
	for got := 0; got < 4; {
		n, err := fc.Read(buf) // op 0 is the scripted short read
		if err != nil {
			return fail(err)
		}
		got += n
	}
	for i := 0; i < 6; i++ {
		// Ops 4 (truncate) and 5 (reset) fail by design — the injected
		// error is the point; the benign ops before them must not.
		if _, err := fc.Write([]byte("demo payload")); err != nil && i < 4 {
			return fail(err)
		}
	}
	fc.Close()
	<-done

	// Scene 2: a controller on a virtual clock, one over-target
	// observation at Sustain 1 and a pinned full shed fraction — straight
	// into brownout, so the engine behind the wire listener sheds the one
	// event a client offers.
	clk := fault.NewManualClock(time.Unix(1_700_000_000, 0))
	adm, err := serve.NewAdmission(serve.AdmitOptions{
		Target:  time.Millisecond,
		Sustain: 1,
		ShedMin: 1,
		ShedMax: 1,
		Clock:   clk,
		Obs:     reg,
	})
	if err != nil {
		return fail(err)
	}
	adm.Observe(50 * time.Millisecond)
	if adm.State() != serve.AdmitBrownout {
		return fail(fmt.Errorf("controller did not brown out"))
	}
	e, err := serve.New(rec, serve.Options{Shards: 1, QueueDepth: 8, Obs: reg, Admission: adm, Clock: clk})
	if err != nil {
		return fail(err)
	}
	iclk := fault.NewManualClock(time.Unix(1_700_000_000, 0))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	ws := ingest.Serve(ln, e, ingest.Options{
		Obs:           reg,
		IdleTimeout:   time.Second,
		SweepInterval: -1, // swept explicitly below; the clock is virtual
		Clock:         iclk,
		MaxConns:      1,
		WriteTimeout:  time.Second,
	})
	defer ws.Close()
	c1, err := net.Dial("tcp", ws.Addr().String())
	if err != nil {
		return fail(err)
	}
	defer c1.Close()
	br1 := bufio.NewReader(c1)
	frame, err := wire.NewEncoder().AppendFrame(nil, []wire.Event{{
		Session: "demo-shed", Kind: wire.KindDown, X: 0.1, Y: 0.2, TMicros: 1,
	}})
	if err != nil {
		return fail(err)
	}
	if _, err := c1.Write(frame); err != nil {
		return fail(err)
	}
	resp, err := wire.ReadResponse(br1, nil)
	if err != nil {
		return fail(err)
	}
	if resp.Fatal || len(resp.Nacks) != 1 || resp.Nacks[0].Code != wire.NackOverload || resp.RetryAfterMS == 0 {
		return fail(fmt.Errorf("browned-out engine answered %+v, want one overload NACK with a retry hint", resp))
	}

	// Scene 3a: a second connection while the first holds the only
	// MaxConns slot — refused with a typed fatal, never served.
	c2, err := net.Dial("tcp", ws.Addr().String())
	if err != nil {
		return fail(err)
	}
	defer c2.Close()
	resp2, err := wire.ReadResponse(bufio.NewReader(c2), nil)
	if err != nil {
		return fail(err)
	}
	if !resp2.Fatal || resp2.Code != wire.FatalOverloaded {
		return fail(fmt.Errorf("over-cap connection answered %+v, want fatal overloaded", resp2))
	}

	// Scene 3b: the first connection goes silent past the idle deadline;
	// the watchdog collects it with a FatalTimeout.
	iclk.Advance(2 * time.Second)
	if n := ws.SweepIdle(); n != 1 {
		return fail(fmt.Errorf("SweepIdle = %d, want 1", n))
	}
	resp3, err := wire.ReadResponse(br1, nil)
	if err != nil {
		return fail(err)
	}
	if !resp3.Fatal || resp3.Code != wire.FatalTimeout {
		return fail(fmt.Errorf("idle connection answered %+v, want fatal timeout", resp3))
	}
	if err := ws.Close(); err != nil {
		return fail(err)
	}
	if err := e.Close(); err != nil {
		return fail(fmt.Errorf("close: %w", err))
	}
	return nil
}

// play streams one single-finger interaction through the submitter
// (which absorbs backpressure with unlimited retries). finish controls
// whether the FingerUp is sent (false leaves the session in flight for
// Close to drain or the reaper to collect).
func play(sub *serve.Submitter, id string, g geom.Path, finish bool) error {
	for i, p := range g {
		kind := multipath.FingerMove
		if i == 0 {
			kind = multipath.FingerDown
		}
		if err := sub.Submit(serve.Event{Session: id, Kind: kind, X: p.X, Y: p.Y, T: p.T}); err != nil {
			return fmt.Errorf("obsdemo: submit: %w", err)
		}
	}
	if !finish {
		return nil
	}
	last := g[len(g)-1]
	if err := sub.Submit(serve.Event{Session: id, Kind: multipath.FingerUp, X: last.X, Y: last.Y, T: last.T + 0.01}); err != nil {
		return fmt.Errorf("obsdemo: submit: %w", err)
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
