package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/synth"
)

func writeSet(t *testing.T, dir string) string {
	t.Helper()
	set, _ := synth.NewGenerator(synth.DefaultParams(5)).Set("t", synth.UDClasses(), 10)
	path := dir + "/set.json"
	if err := set.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTrainFullRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := writeSet(t, dir)
	out := dir + "/full.json"
	var stderr bytes.Buffer
	if code := run([]string{"-in", in, "-o", out}, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "full classifier") {
		t.Errorf("stderr: %s", stderr.String())
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal(err)
	}
}

func TestTrainEagerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := writeSet(t, dir)
	out := dir + "/eager.json"
	var stderr bytes.Buffer
	if code := run([]string{"-in", in, "-o", out, "-eager", "-agreement"}, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "eager recognizer") {
		t.Errorf("stderr: %s", stderr.String())
	}
}

func TestTrainUsageErrors(t *testing.T) {
	var stderr bytes.Buffer
	if code := run(nil, &stderr); code != 2 {
		t.Errorf("missing flags: exit %d", code)
	}
	if code := run([]string{"-in", "/no/such.json", "-o", t.TempDir() + "/x.json"}, &stderr); code != 1 {
		t.Errorf("missing input: exit %d", code)
	}
	if code := run([]string{"-bogus"}, &stderr); code != 2 {
		t.Errorf("bad flag: exit %d", code)
	}
}
