package main

import (
	"flag"
	"fmt"
	"io"

	"repro/internal/eager"
	"repro/internal/gesture"
	"repro/internal/recognizer"
)

// run executes gtrain with the given arguments, writing diagnostics to
// stderr. It returns a process exit code. Extracted from main for tests.
func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("gtrain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "training set JSON (required)")
	out := fs.String("o", "", "output recognizer JSON (required)")
	eagerFlag := fs.Bool("eager", false, "train an eager recognizer (default: full classifier)")
	bias := fs.Float64("bias", 5, "eager: ambiguity bias factor (paper: 5)")
	threshold := fs.Float64("threshold", 0.5, "eager: accidental-completeness threshold fraction (paper: 0.5)")
	agreement := fs.Bool("agreement", false, "eager: fire only when AUC and full classifier agree (extension A5)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *in == "" || *out == "" {
		fmt.Fprintln(stderr, "gtrain: -in and -o are required")
		fs.Usage()
		return 2
	}
	set, err := gesture.LoadFile(*in)
	if err != nil {
		fmt.Fprintf(stderr, "gtrain: %v\n", err)
		return 1
	}
	counts := set.CountByClass()
	fmt.Fprintf(stderr, "gtrain: %d examples, %d classes\n", set.Len(), len(counts))

	if *eagerFlag {
		opts := eager.DefaultOptions()
		opts.AmbiguityBias = *bias
		opts.MoveThresholdFrac = *threshold
		opts.RequireAgreement = *agreement
		rec, report, err := eager.Train(set, opts)
		if err != nil {
			fmt.Fprintf(stderr, "gtrain: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr,
			"gtrain: eager recognizer: %d subgestures labelled (%d complete / %d incomplete), %d moved, %d tweaks, AUC %d classes\n",
			report.Subgestures, report.Complete, report.Incomplete,
			report.MovedAccidental, report.TweakAdjusts, report.AUCClasses)
		if err := rec.SaveFile(*out); err != nil {
			fmt.Fprintf(stderr, "gtrain: %v\n", err)
			return 1
		}
	} else {
		rec, err := recognizer.Train(set, recognizer.DefaultTrainOptions())
		if err != nil {
			fmt.Fprintf(stderr, "gtrain: %v\n", err)
			return 1
		}
		acc, _, err := rec.Accuracy(set)
		if err != nil {
			fmt.Fprintf(stderr, "gtrain: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "gtrain: full classifier, %.1f%% on its own training data\n", 100*acc)
		if err := rec.SaveFile(*out); err != nil {
			fmt.Fprintf(stderr, "gtrain: %v\n", err)
			return 1
		}
	}
	fmt.Fprintf(stderr, "gtrain: wrote %s\n", *out)
	return 0
}
