// Package rubine is the public API of this reproduction of Dean Rubine's
// "Integrating Gesture Recognition and Direct Manipulation" (USENIX 1991).
//
// It re-exports the building blocks a downstream application needs:
//
//   - gesture data types and synthetic generators (Gesture, Set, the
//     figure-9/figure-10 gesture sets);
//   - the statistical single-stroke recognizer (TrainFull / FullRecognizer);
//   - eager recognition — training recognizers that classify a gesture
//     mid-stroke, as soon as it becomes unambiguous (TrainEager,
//     EagerRecognizer, EagerSession);
//   - the GRANDMA toolkit for two-phase gesture-plus-direct-manipulation
//     interfaces (View, GestureHandler, Semantics, transition modes);
//   - GDP, the gesture-based drawing program built on all of the above.
//
// Quick start:
//
//	set, _ := rubine.Generate(rubine.EightDirections, 15, 1)
//	rec, report, err := rubine.TrainEager(set, rubine.DefaultEagerOptions())
//	...
//	session := rec.NewSession()
//	for _, p := range stroke {
//	    if fired, class := session.Add(p); fired {
//	        // switch to the manipulation phase for `class`
//	    }
//	}
package rubine

import (
	"repro/internal/analysis"
	"repro/internal/eager"
	"repro/internal/gdp"
	"repro/internal/geom"
	"repro/internal/gesture"
	"repro/internal/grandma"
	"repro/internal/multipath"
	"repro/internal/multistroke"
	"repro/internal/recognizer"
	"repro/internal/segment"
	"repro/internal/synth"
	"repro/internal/template"
)

// Geometry and gesture data types.
type (
	// Point is a plain 2-D point (x right, y down).
	Point = geom.Point
	// TimedPoint is one mouse sample (x, y, t) — t in seconds.
	TimedPoint = geom.TimedPoint
	// Path is a sequence of mouse samples.
	Path = geom.Path
	// Gesture is a single-stroke gesture.
	Gesture = gesture.Gesture
	// Example is a labelled gesture.
	Example = gesture.Example
	// Set is a named collection of labelled gestures.
	Set = gesture.Set
)

// Pt constructs a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// TPt constructs a TimedPoint.
func TPt(x, y, t float64) TimedPoint { return geom.TPt(x, y, t) }

// NewGesture wraps a path as a gesture.
func NewGesture(p Path) Gesture { return gesture.New(p) }

// LoadSet reads a gesture set from a JSON file.
func LoadSet(path string) (*Set, error) { return gesture.LoadFile(path) }

// Recognizers.
type (
	// FullRecognizer is the paper's full (non-eager) statistical
	// classifier over complete gestures.
	FullRecognizer = recognizer.Full
	// EagerRecognizer classifies gestures mid-stroke, as soon as they are
	// unambiguous.
	EagerRecognizer = eager.Recognizer
	// EagerSession is a streaming recognition session over one stroke.
	EagerSession = eager.Session
	// EagerOptions configures eager training.
	EagerOptions = eager.Options
	// EagerReport captures per-stage eager-training statistics.
	EagerReport = eager.Report
	// TrainOptions configures full-classifier training.
	TrainOptions = recognizer.TrainOptions
)

// TrainFull trains the full classifier from a labelled set.
func TrainFull(set *Set, opts TrainOptions) (*FullRecognizer, error) {
	return recognizer.Train(set, opts)
}

// DefaultTrainOptions returns paper-faithful full-training options.
func DefaultTrainOptions() TrainOptions { return recognizer.DefaultTrainOptions() }

// TrainEager trains an eager recognizer (sections 4.3-4.7 of the paper).
func TrainEager(set *Set, opts EagerOptions) (*EagerRecognizer, *EagerReport, error) {
	return eager.Train(set, opts)
}

// DefaultEagerOptions returns the paper-faithful eager configuration:
// 5x ambiguity bias and the 50% accidental-completeness threshold.
func DefaultEagerOptions() EagerOptions { return eager.DefaultOptions() }

// LoadEager reads a trained eager recognizer from a JSON file.
func LoadEager(path string) (*EagerRecognizer, error) { return eager.LoadFile(path) }

// LoadFull reads a trained full recognizer from a JSON file.
func LoadFull(path string) (*FullRecognizer, error) { return recognizer.LoadFile(path) }

// Synthetic gesture generation (the stand-in for human input).
type (
	// GestureClass is a skeleton-defined gesture class for the generator.
	GestureClass = synth.Class
	// GenParams controls the stroke synthesizer.
	GenParams = synth.Params
	// Generator synthesizes gesture examples.
	Generator = synth.Generator
)

// Predefined gesture-set identifiers for Generate.
const (
	// UD is the paper's two-class pedagogical set (figures 5-7).
	UD = "ud"
	// EightDirections is the figure-9 evaluation set.
	EightDirections = "eight"
	// GDPSet is the eleven-class GDP set (figures 3 and 10).
	GDPSet = "gdp"
	// Notes is Buxton's note-duration set (figure 8) — not amenable to
	// eager recognition.
	Notes = "notes"
)

// Classes returns the class definitions of a predefined set identifier.
func Classes(name string) []GestureClass {
	switch name {
	case UD:
		return synth.UDClasses()
	case EightDirections:
		return synth.EightDirectionClasses()
	case GDPSet:
		return synth.GDPClasses()
	case Notes:
		return synth.NoteClasses()
	default:
		return nil
	}
}

// Generate produces n examples per class of a predefined set with the
// given seed. It returns nil for an unknown set name.
func Generate(name string, n int, seed int64) *Set {
	classes := Classes(name)
	if classes == nil {
		return nil
	}
	set, _ := synth.NewGenerator(synth.DefaultParams(seed)).Set(name, classes, n)
	return set
}

// NewGenerator returns a gesture synthesizer for custom classes.
func NewGenerator(p GenParams) *Generator { return synth.NewGenerator(p) }

// DefaultGenParams returns generator parameters calibrated to the paper's
// data.
func DefaultGenParams(seed int64) GenParams { return synth.DefaultParams(seed) }

// GRANDMA toolkit.
type (
	// View is a displayable object with an event-handler list.
	View = grandma.View
	// ViewClass groups views and carries inherited handlers.
	ViewClass = grandma.ViewClass
	// UISession is a running GRANDMA interface over a view tree.
	UISession = grandma.Session
	// GestureHandler implements the two-phase interaction.
	GestureHandler = grandma.GestureHandler
	// Semantics is the recog/manip/done behaviour triple.
	Semantics = grandma.Semantics
	// Attrs carries gestural attributes into semantics.
	Attrs = grandma.Attrs
	// TransitionMode selects mouse-up, timeout, or eager transitions.
	TransitionMode = grandma.TransitionMode
	// DragHandler is the classic direct-manipulation drag.
	DragHandler = grandma.DragHandler
)

// Transition modes for the two-phase interaction.
const (
	ModeMouseUp = grandma.ModeMouseUp
	ModeTimeout = grandma.ModeTimeout
	ModeEager   = grandma.ModeEager
)

// NewGestureHandler builds a gesture handler around a full classifier
// (mouse-up or timeout transitions).
func NewGestureHandler(full *FullRecognizer, mode TransitionMode) *GestureHandler {
	return grandma.NewGestureHandler(full, mode)
}

// NewEagerGestureHandler builds a gesture handler with eager transitions.
func NewEagerGestureHandler(rec *EagerRecognizer) *GestureHandler {
	return grandma.NewEagerGestureHandler(rec)
}

// GDP, the demonstration application.
type (
	// GDP is the gesture-based drawing program.
	GDP = gdp.App
	// GDPConfig configures a GDP instance.
	GDPConfig = gdp.Config
	// Shape is a GDP drawable.
	Shape = gdp.Shape
)

// NewGDP builds a GDP instance.
func NewGDP(cfg GDPConfig) (*GDP, error) { return gdp.New(cfg) }

// Multi-finger (Sensor Frame) extension — section 6 of the paper.
type (
	// Transform is an incremental similarity transform (two-finger
	// translate-rotate-scale).
	Transform = multipath.Transform
	// TransformTracker accumulates incremental transforms from a moving
	// finger pair.
	TransformTracker = multipath.TransformTracker
	// MultiSession is a multi-finger two-phase interaction session.
	MultiSession = multipath.Session
	// FingerEvent is one finger sample in a multi-finger session.
	FingerEvent = multipath.Event
)

// SolveTransform computes the similarity transform mapping finger pair
// (a0, b0) onto (a1, b1).
func SolveTransform(a0, b0, a1, b1 Point) Transform {
	return multipath.Solve(a0, b0, a1, b1)
}

// NewMultiSession starts a multi-finger interaction over an eager
// recognizer.
func NewMultiSession(rec *EagerRecognizer) *MultiSession {
	return multipath.NewSession(rec)
}

// Recorder captures raw strokes drawn through a GRANDMA session as
// labelled examples — the collection half of train-by-example.
type Recorder = grandma.Recorder

// Multi-stroke marks — the paper's other section-6 extension: adapting the
// single-stroke recognizer to marks like "X" that need several strokes.
type (
	// MultiStrokeRecognizer groups strokes into marks and matches them
	// against registered definitions.
	MultiStrokeRecognizer = multistroke.Recognizer
	// MultiStrokeDefinition describes one multi-stroke class as a sequence
	// of single-stroke classes.
	MultiStrokeDefinition = multistroke.Definition
	// MultiStrokeConfig tunes stroke grouping (timeout, distance).
	MultiStrokeConfig = multistroke.Config
	// Mark is one recognized multi-stroke gesture.
	Mark = multistroke.Mark
)

// NewMultiStroke builds a multi-stroke recognizer over a trained
// single-stroke classifier.
func NewMultiStroke(single *FullRecognizer, cfg MultiStrokeConfig) *MultiStrokeRecognizer {
	return multistroke.New(single, cfg)
}

// DefaultMultiStrokeConfig returns the standard grouping parameters.
func DefaultMultiStrokeConfig() MultiStrokeConfig { return multistroke.DefaultConfig() }

// Runtime gesture-set editing — GRANDMA's train-by-example loop.
type (
	// GestureEditor records new gesture examples through a live interface,
	// retrains, and swaps the recognizer into the handler without
	// restarting.
	GestureEditor = grandma.Editor
	// Observable and Subject form GRANDMA's model layer: application
	// objects announce changes; bound sessions repaint.
	Observable = grandma.Observable
	Subject    = grandma.Subject
)

// NewGestureEditor builds an editor over a handler and a seed example set
// (nil starts empty).
func NewGestureEditor(h *GestureHandler, seed *Set, opts EagerOptions) *GestureEditor {
	return grandma.NewEditor(h, seed, opts)
}

// Gesture-set design analysis and the baseline recognizer.
type (
	// SetReport is the gesture-set design analysis: pairwise separation,
	// per-class eagerness, prefix-confusion warnings.
	SetReport = analysis.Report
	// TemplateRecognizer is the nearest-neighbor baseline recognizer.
	TemplateRecognizer = template.Recognizer
	// TemplateOptions configures the baseline recognizer.
	TemplateOptions = template.Options
)

// AnalyzeSet evaluates a gesture set's design (see internal/analysis).
func AnalyzeSet(set *Set) (*SetReport, error) {
	return analysis.Analyze(set, analysis.DefaultOptions())
}

// TrainTemplate trains the template-matching baseline recognizer.
func TrainTemplate(set *Set, opts TemplateOptions) (*TemplateRecognizer, error) {
	return template.Train(set, opts)
}

// DefaultTemplateOptions returns the baseline's standard configuration.
func DefaultTemplateOptions() TemplateOptions { return template.DefaultOptions() }

// Stroke segmentation for devices with no explicit gesture start signal
// (the paper's DataGlove future-work item).
type (
	// Segmenter carves a continuous point stream into strokes by dwell
	// and gap detection.
	Segmenter = segment.Segmenter
	// SegmentOptions tunes the segmenter.
	SegmentOptions = segment.Options
)

// NewSegmenter returns a stroke segmenter.
func NewSegmenter(opts SegmentOptions) *Segmenter { return segment.New(opts) }

// SegmentStream carves a whole stream into strokes in one call.
func SegmentStream(stream Path, opts SegmentOptions) []Gesture {
	return segment.Segment(stream, opts)
}
