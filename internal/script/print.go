package script

import (
	"fmt"
	"strconv"
	"strings"
)

// Format renders the program back to canonical source: statements joined
// by "; ", keyword selectors interleaved with their arguments, strings
// quoted. Parsing the result yields a structurally identical program —
// the round-trip property tests rely on this. It is also the basis for
// semantics inspection tooling (GRANDMA let users browse and edit gesture
// semantics at runtime).
func (p *Program) Format() string {
	parts := make([]string, len(p.Stmts))
	for i := range p.Stmts {
		st := &p.Stmts[i]
		s := formatExpr(st.Expr)
		if st.Assign != "" {
			s = st.Assign + " = " + s
		}
		parts[i] = s
	}
	return strings.Join(parts, "; ")
}

func formatExpr(e Expr) string {
	switch n := e.(type) {
	case *NumLit:
		return strconv.FormatFloat(n.Value, 'g', -1, 64)
	case *StrLit:
		return quote(n.Value)
	case *NilLit:
		return "nil"
	case *VarRef:
		return n.Name
	case *AttrRef:
		return "<" + n.Name + ">"
	case *Msg:
		var b strings.Builder
		b.WriteByte('[')
		b.WriteString(formatExpr(n.Recv))
		if len(n.Args) == 0 {
			b.WriteByte(' ')
			b.WriteString(n.Selector)
		} else {
			parts := strings.SplitAfter(n.Selector, ":")
			// SplitAfter leaves a trailing empty element.
			k := 0
			for _, part := range parts {
				if part == "" {
					continue
				}
				b.WriteByte(' ')
				b.WriteString(part)
				if k < len(n.Args) {
					b.WriteString(formatExpr(n.Args[k]))
					k++
				}
			}
		}
		b.WriteByte(']')
		return b.String()
	default:
		return fmt.Sprintf("/*?%T*/", e)
	}
}

func quote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"', '\\':
			b.WriteByte('\\')
		}
		b.WriteByte(s[i])
	}
	b.WriteByte('"')
	return b.String()
}
