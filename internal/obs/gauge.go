package obs

// Gauge is a settable instantaneous value (a level, not a count): SLO
// burn rates, states, and queue fill fractions live here. Reads and
// writes are atomic (CAS on the float64 bit pattern); all methods are
// safe for concurrent use and no-ops on a nil receiver, the same
// disabled-path contract as Counter.
type Gauge struct {
	v atomicFloat64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.store(v)
}

// Add adjusts the gauge by d (atomically). No-op on a nil receiver.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.v.add(d)
}

// Value returns the current value; 0 on a nil receiver.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.load()
}

// GaugeSnap is the point-in-time value of one gauge inside a Snapshot.
type GaugeSnap struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}
