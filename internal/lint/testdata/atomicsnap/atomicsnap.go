// Package fixture exercises the atomicsnap analyzer: an atomic.Pointer
// is Loaded at most once per function (the snapshot) and is never touched
// except through its atomic methods.
package fixture

import "sync/atomic"

type model struct{ classes int }

type engine struct {
	rec   atomic.Pointer[model]
	slots []atomic.Pointer[model]
}

// snapshotOnce is the contract's clean shape: one Load, reused.
func snapshotOnce(e *engine) int {
	m := e.rec.Load()
	if m == nil {
		return 0
	}
	return m.classes + m.classes
}

// swapProtocol pairs one Load with a Store; that is the swap itself.
func swapProtocol(e *engine, next *model) int {
	old := e.rec.Load()
	e.rec.Store(next)
	if old == nil {
		return 0
	}
	return old.classes
}

// casRetry loops on CompareAndSwap with a single Load call site; static
// call sites are what the check counts, so retry loops are legal.
func casRetry(e *engine, next *model) {
	for {
		old := e.rec.Load()
		if e.rec.CompareAndSwap(old, next) {
			return
		}
	}
}

// doubleLoad can observe two different models across a concurrent Swap.
func doubleLoad(e *engine) int {
	a := e.rec.Load().classes
	b := e.rec.Load().classes // want `atomic pointer e\.rec is Loaded 2 times in one function`
	return a + b
}

// directAccess bypasses the atomic protocol entirely.
func directAccess(e *engine) *atomic.Pointer[model] {
	return &e.rec // want `atomic pointer e\.rec accessed outside its atomic methods`
}

// mixedAccess snapshots and then touches the field directly.
func mixedAccess(e *engine) bool {
	m := e.rec.Load()
	p := &e.rec // want `atomic pointer e\.rec accessed outside its atomic methods`
	return m == p.Load()
}

// indexedOutOfScope: computed receivers (ring slots) are beyond a textual
// chain key and deliberately unjudged.
func indexedOutOfScope(e *engine, i int) int {
	a := e.slots[i].Load()
	b := e.slots[i].Load()
	if a == nil || b == nil {
		return 0
	}
	return a.classes + b.classes
}

// suppressedDouble carries the audited allowlist directive.
func suppressedDouble(e *engine) int {
	a := e.rec.Load().classes
	//lint:ignore atomicsnap fixture: generation check compares two intentional snapshots
	b := e.rec.Load().classes
	return a + b
}
