package experiments

import (
	"strings"
	"testing"

	"repro/internal/synth"
)

// fastConfig shrinks the test set for unit-test speed; the full protocol
// runs in geval and the benchmarks.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.TestPerClass = 10
	return cfg
}

func TestFig9Shape(t *testing.T) {
	res, err := Fig9(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: full 99.2%, eager 97.0%, eagerness 67.9%, oracle 59.4%.
	// Shape targets per DESIGN.md.
	if res.FullAccuracy < 0.95 {
		t.Errorf("full accuracy %.3f", res.FullAccuracy)
	}
	if res.EagerAccuracy < 0.85 {
		t.Errorf("eager accuracy %.3f", res.EagerAccuracy)
	}
	if res.EagerAccuracy > res.FullAccuracy+0.02 {
		t.Errorf("eager (%.3f) beat full (%.3f)", res.EagerAccuracy, res.FullAccuracy)
	}
	if res.Eagerness >= 0.95 || res.Eagerness <= 0.3 {
		t.Errorf("eagerness %.3f out of plausible band", res.Eagerness)
	}
	// The oracle is a lower bound on points that must be seen.
	if res.OracleEagerness <= 0 || res.OracleEagerness > res.Eagerness+0.05 {
		t.Errorf("oracle %.3f vs eagerness %.3f: recognizer beat the oracle", res.OracleEagerness, res.Eagerness)
	}
	if len(res.PerClass) != 8 {
		t.Errorf("%d per-class rows", len(res.PerClass))
	}
	out := res.Format()
	for _, want := range []string{"full classifier accuracy", "points examined", "minimum possible", "ur", "ld"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	res, err := Fig10(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: full 99.7%, eager 93.5%, 60.5% of points examined.
	if res.FullAccuracy < 0.93 {
		t.Errorf("full accuracy %.3f", res.FullAccuracy)
	}
	if res.EagerAccuracy < 0.80 {
		t.Errorf("eager accuracy %.3f", res.EagerAccuracy)
	}
	if res.FullAccuracy < res.EagerAccuracy-0.02 {
		t.Errorf("ordering violated: full %.3f < eager %.3f", res.FullAccuracy, res.EagerAccuracy)
	}
	if res.Eagerness >= 0.98 {
		t.Errorf("eagerness %.3f: GDP set should be somewhat eager", res.Eagerness)
	}
	if len(res.PerClass) != 11 {
		t.Errorf("%d per-class rows", len(res.PerClass))
	}
}

func TestFig8NotAmenable(t *testing.T) {
	res, err := Fig8(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The note gestures must show dramatically less eagerness than fig9.
	fig9, err := Fig9(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Eagerness < fig9.Eagerness+0.1 {
		t.Errorf("notes eagerness %.3f not clearly worse than fig9's %.3f", res.Eagerness, fig9.Eagerness)
	}
	if res.Eagerness < 0.85 {
		t.Errorf("notes eagerness %.3f; expected near 1 (never eager)", res.Eagerness)
	}
}

func TestUDPipelineReport(t *testing.T) {
	res, err := UD(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Report == nil {
		t.Fatal("no training report")
	}
	if res.Report.MovedAccidental == 0 {
		t.Error("no accidentally complete subgestures moved (fig. 6 behaviour)")
	}
	if res.Report.AUCClasses < 3 {
		t.Errorf("AUC classes = %d", res.Report.AUCClasses)
	}
	if res.EagerAccuracy < 0.9 {
		t.Errorf("U/D eager accuracy %.3f", res.EagerAccuracy)
	}
}

func TestTiming(t *testing.T) {
	res, err := RunTiming(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.FeatureUpdate <= 0 || res.AUCClassify <= 0 {
		t.Errorf("non-positive timings: %+v", res)
	}
	// Modern hardware: both costs must be far below the paper's
	// milliseconds — and feature update should remain cheaper than a full
	// AUC classification.
	if res.FeatureUpdate.Seconds() > 0.0005 {
		t.Errorf("feature update %v implausibly slow", res.FeatureUpdate)
	}
	// The paper's GDP AUC has 22 classes (2 x 11); ours may lose one or two
	// when a class (like dot) is too short to contribute subgestures.
	if res.AUCClasses < 20 || res.AUCClasses > 22 {
		t.Errorf("AUC classes = %d, want ~22 for GDP", res.AUCClasses)
	}
	out := res.Format()
	if !strings.Contains(out, "feature update") || !strings.Contains(out, "AUC per class") {
		t.Errorf("Format output:\n%s", out)
	}
}

func TestAblationTwoClass(t *testing.T) {
	res, err := AblationTwoClassAUC(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	paper, baseline := res.Rows[0], res.Rows[1]
	// Section 4.4's ordering: the 2C-class AUC is at least as accurate.
	if baseline.EagerAccuracy > paper.EagerAccuracy+0.02 {
		t.Errorf("two-class (%.3f) beat 2C-class (%.3f)", baseline.EagerAccuracy, paper.EagerAccuracy)
	}
	if !strings.Contains(res.Format(), "two-class") {
		t.Error("Format missing labels")
	}
}

func TestAblationBiasSweepMonotoneEagerness(t *testing.T) {
	res, err := AblationBiasSweep(fastConfig(), []float64{1, 5, 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Higher bias => more conservative => sees at least as many points.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Eagerness < res.Rows[i-1].Eagerness-0.02 {
			t.Errorf("eagerness not monotone in bias: %+v", res.Rows)
		}
	}
}

func TestAblationThresholdSweep(t *testing.T) {
	res, err := AblationThresholdSweep(fastConfig(), []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Disabling the move step (threshold 0) must not *improve* accuracy
	// beyond noise: the step exists to protect accuracy.
	if res.Rows[0].EagerAccuracy > res.Rows[1].EagerAccuracy+0.05 {
		t.Errorf("move step hurt accuracy: %+v", res.Rows)
	}
}

func TestTrainSizeSweep(t *testing.T) {
	res, err := TrainSizeSweep(fastConfig(), []int{5, 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// More data should not make the full classifier dramatically worse.
	if res.Rows[1].FullAccuracy < res.Rows[0].FullAccuracy-0.05 {
		t.Errorf("full accuracy degraded with more data: %+v", res.Rows)
	}
}

func TestAblationAgreement(t *testing.T) {
	res, err := AblationAgreement(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Agreement gating must not reduce accuracy, and must not dramatically
	// reduce eagerness, on either workload.
	for i := 0; i < len(res.Rows); i += 2 {
		paper, gated := res.Rows[i], res.Rows[i+1]
		if gated.EagerAccuracy < paper.EagerAccuracy-0.01 {
			t.Errorf("%s: gated accuracy %.3f below paper rule %.3f", gated.Label, gated.EagerAccuracy, paper.EagerAccuracy)
		}
		if gated.Eagerness > paper.Eagerness+0.05 {
			t.Errorf("%s: gating cost too much eagerness: %.3f vs %.3f", gated.Label, gated.Eagerness, paper.Eagerness)
		}
	}
}

func TestAnnotate(t *testing.T) {
	cfg := fastConfig()
	anns, err := Annotate("fig9", synth.EightDirectionClasses(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) != 8*cfg.TestPerClass {
		t.Fatalf("%d annotations", len(anns))
	}
	for _, a := range anns {
		if a.FiredAt < 1 || a.FiredAt > a.Total {
			t.Fatalf("bad annotation %+v", a)
		}
		if a.MinPoints <= 0 {
			t.Fatalf("fig9 oracle missing: %+v", a)
		}
		if a.MinPoints > a.Total {
			t.Fatalf("oracle beyond gesture: %+v", a)
		}
	}
	// Format resembles the figure: "min,fired/total class index".
	s := anns[0].String()
	if !strings.Contains(s, ",") || !strings.Contains(s, "/") {
		t.Errorf("annotation format %q", s)
	}
	body := FormatAnnotations(anns)
	if strings.Count(body, "\n") != 8 {
		t.Errorf("expected 8 class lines:\n%s", body)
	}
	// GDP set: no oracle, so the min field is omitted.
	anns10, err := Annotate("fig10", synth.GDPClasses(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range anns10 {
		if a.Class == "line" && a.MinPoints != 0 {
			t.Fatalf("unexpected oracle on %s", a.Class)
		}
	}
}

func TestConfusions(t *testing.T) {
	cfg := fastConfig()
	full, eagerC, err := Confusions("fig9", synth.EightDirectionClasses(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Classes) != 8 || len(eagerC.Classes) != 8 {
		t.Fatalf("classes: %v", full.Classes)
	}
	// Row sums equal the test count per class.
	for i := range full.Counts {
		sum := 0
		for _, n := range full.Counts[i] {
			sum += n
		}
		if sum != cfg.TestPerClass {
			t.Fatalf("row %s sums to %d", full.Classes[i], sum)
		}
	}
	// Accuracy from the matrix matches the headline evaluation ordering.
	if full.Accuracy() < eagerC.Accuracy()-0.02 {
		t.Errorf("full %.3f < eager %.3f", full.Accuracy(), eagerC.Accuracy())
	}
	out := full.Format()
	if !strings.Contains(out, "actual\\pred") || !strings.Contains(out, "ur") {
		t.Errorf("Format:\n%s", out)
	}
	// Errors lists only off-diagonal entries.
	for _, e := range eagerC.Errors() {
		if !strings.Contains(e, "->") {
			t.Errorf("error entry %q", e)
		}
	}
	// Unknown names are ignored safely.
	full.Add("nope", "ur")
	full.Add("ur", "nope")
}

func TestConfusionEmptyAccuracy(t *testing.T) {
	c := newConfusion([]string{"a", "b"})
	if c.Accuracy() != 0 {
		t.Error("empty matrix accuracy")
	}
	if len(c.Errors()) != 0 {
		t.Error("empty matrix has errors")
	}
}

func TestFeatureDropSweep(t *testing.T) {
	cfg := fastConfig()
	res, err := FeatureDropSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 14 { // all-features row + 13 leave-one-out rows
		t.Fatalf("rows = %d", len(res.Rows))
	}
	base := res.Rows[0]
	for _, r := range res.Rows[1:] {
		// Dropping one of thirteen redundant features must not devastate
		// the full classifier.
		if r.FullAccuracy < base.FullAccuracy-0.10 {
			t.Errorf("%s: full accuracy collapsed to %.3f", r.Label, r.FullAccuracy)
		}
	}
}

func TestTailEffect(t *testing.T) {
	cfg := fastConfig()
	res, err := RunTailEffect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's conclusion: recognition is "much more successful on the
	// remaining prefix" — the two-phase condition must win on aggregate.
	if res.TwoPhaseAccuracy < res.OnePhaseAccuracy {
		t.Errorf("two-phase %.3f did not beat one-phase %.3f", res.TwoPhaseAccuracy, res.OnePhaseAccuracy)
	}
	if res.TwoPhaseWins <= res.OnePhaseWins {
		t.Errorf("wins: two-phase %d vs one-phase %d", res.TwoPhaseWins, res.OnePhaseWins)
	}
	out := res.Format()
	if !strings.Contains(out, "one-phase") || !strings.Contains(out, "two-phase") {
		t.Errorf("Format:\n%s", out)
	}
}

func TestRejectionSweep(t *testing.T) {
	cfg := fastConfig()
	res, err := RunRejection(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	base := res.Rows[0]
	if base.FalseReject != 0 || base.FalseAccept != 1 {
		t.Errorf("no-rejection row wrong: %+v", base)
	}
	// The Mahalanobis gate must reject nearly all garbage at a small
	// false-reject cost — the §4.2 metric doing its job.
	var maha *RejectionRow
	for i := range res.Rows {
		if res.Rows[i].Label == "Mahalanobis <= 12" {
			maha = &res.Rows[i]
		}
	}
	if maha == nil {
		t.Fatal("missing Mahalanobis row")
	}
	if maha.FalseAccept > 0.1 {
		t.Errorf("Mahalanobis gate accepted %.0f%% of garbage", 100*maha.FalseAccept)
	}
	if maha.FalseReject > 0.1 {
		t.Errorf("Mahalanobis gate rejected %.0f%% of valid gestures", 100*maha.FalseReject)
	}
	if !strings.Contains(res.Format(), "false-rej%") {
		t.Error("Format header missing")
	}
}

func TestBaselineComparison(t *testing.T) {
	cfg := fastConfig()
	res, err := RunBaseline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i := 0; i < len(res.Rows); i += 2 {
		rub, tmpl := res.Rows[i], res.Rows[i+1]
		if rub.Recognizer != "rubine" || tmpl.Recognizer != "template" {
			t.Fatalf("row order: %+v", res.Rows)
		}
		// Both methods must be competent on these sets.
		if rub.Accuracy < 0.93 || tmpl.Accuracy < 0.9 {
			t.Errorf("%s accuracies: rubine %.3f template %.3f", rub.Workload, rub.Accuracy, tmpl.Accuracy)
		}
		// The cost-structure claim: per-classification the statistical
		// recognizer is much cheaper than nearest-neighbor matching.
		if rub.Classify*3 > tmpl.Classify {
			t.Errorf("%s classify costs: rubine %v vs template %v — expected a large gap", rub.Workload, rub.Classify, tmpl.Classify)
		}
		// Both backends are eager-capable now: Rubine via the AUC's D
		// function, the template matcher via the streaming session's
		// commit margin (armed by template.DefaultOptions).
		if !rub.EagerReady || !tmpl.EagerReady {
			t.Error("eager capability flags wrong")
		}
	}
	if !strings.Contains(res.Format(), "template") {
		t.Error("Format")
	}
}

func TestCornerLoopSweep(t *testing.T) {
	cfg := fastConfig()
	res, err := CornerLoopSweep(cfg, []float64{0, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	clean, loopy := res.Rows[0], res.Rows[1]
	// §5's attribution: corner loops hurt the eager recognizer distinctly
	// more than the full classifier.
	eagerDrop := clean.EagerAccuracy - loopy.EagerAccuracy
	fullDrop := clean.FullAccuracy - loopy.FullAccuracy
	if eagerDrop < fullDrop {
		t.Errorf("corner loops hurt full (%.3f) more than eager (%.3f); attribution not reproduced", fullDrop, eagerDrop)
	}
	if loopy.EagerAccuracy > clean.EagerAccuracy {
		t.Errorf("defects improved eager accuracy: %.3f -> %.3f", clean.EagerAccuracy, loopy.EagerAccuracy)
	}
}

// TestRunBackends drives the A/B comparison behind the pluggable-backend
// work: both backends stream identical test gestures through
// recognizer.Backend, and the table must show the structural trade —
// comparable accuracy, with the template matcher's per-point cost well
// above the statistical recognizer's.
func TestRunBackends(t *testing.T) {
	cfg := fastConfig()
	res, err := RunBackends(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i := 0; i < len(res.Rows); i += 2 {
		eg, tm := res.Rows[i], res.Rows[i+1]
		if eg.Backend != "eager" || tm.Backend != "template" {
			t.Fatalf("row order: %+v", res.Rows)
		}
		if eg.Accuracy < 0.8 || tm.Accuracy < 0.8 {
			t.Errorf("%s streaming accuracies: eager %.3f template %.3f", eg.Workload, eg.Accuracy, tm.Accuracy)
		}
		// Both backends commit some gestures mid-stroke on these sets.
		if eg.CommitFrac == 0 || tm.CommitFrac == 0 {
			t.Errorf("%s commit fractions: eager %.2f template %.2f", eg.Workload, eg.CommitFrac, tm.CommitFrac)
		}
		// The cost structure: O(classes x features) vs O(templates x points).
		if eg.DecideNS*3 > tm.DecideNS {
			t.Errorf("%s decide costs: eager %.0fns vs template %.0fns — expected a large gap", eg.Workload, eg.DecideNS, tm.DecideNS)
		}
		// Eagerness is a fraction of the stroke, bounded and sane.
		for _, r := range []BackendRow{eg, tm} {
			if r.Eagerness <= 0 || r.Eagerness > 1 {
				t.Errorf("%s/%s eagerness %.3f out of range", r.Workload, r.Backend, r.Eagerness)
			}
		}
	}
	if !strings.Contains(res.Format(), "decide-ns") {
		t.Error("Format")
	}
}
