package grandma

import (
	"testing"

	"repro/internal/display"
	"repro/internal/geom"
	"repro/internal/raster"
)

// counterModel is a tiny observable application object.
type counterModel struct {
	Subject
	n int
}

func (m *counterModel) inc() {
	m.n++
	m.NotifyChanged()
}

func TestSubjectObservers(t *testing.T) {
	var s Subject
	var log []string
	removeA := s.Observe(func() { log = append(log, "a") })
	s.Observe(func() { log = append(log, "b") })
	s.NotifyChanged()
	if len(log) != 2 || log[0] != "a" || log[1] != "b" {
		t.Fatalf("log = %v", log)
	}
	removeA()
	removeA() // double remove is fine
	s.NotifyChanged()
	if len(log) != 3 || log[2] != "b" {
		t.Fatalf("log = %v", log)
	}
	if s.ObserverCount() != 1 {
		t.Fatalf("count = %d", s.ObserverCount())
	}
}

func TestObserverRemovalDuringNotify(t *testing.T) {
	var s Subject
	calls := 0
	var remove func()
	remove = s.Observe(func() {
		calls++
		remove() // self-removal mid-notification
	})
	s.Observe(func() { calls++ })
	s.NotifyChanged()
	s.NotifyChanged()
	// First notify: both; second: only the survivor.
	if calls != 3 {
		t.Fatalf("calls = %d", calls)
	}
}

func TestObserverAddedDuringNotifyDeferred(t *testing.T) {
	var s Subject
	calls := 0
	s.Observe(func() {
		if calls == 0 {
			s.Observe(func() { calls += 10 })
		}
		calls++
	})
	s.NotifyChanged()
	if calls != 1 {
		t.Fatalf("newly added observer ran during same notification: %d", calls)
	}
	s.NotifyChanged()
	if calls != 12 {
		t.Fatalf("calls = %d", calls)
	}
}

func TestBindModelRepaintsOnChange(t *testing.T) {
	m := &counterModel{}
	root := NewView("root", nil)
	root.Frame = geom.Rect{MinX: 0, MinY: 0, MaxX: 50, MaxY: 20}
	root.DrawFunc = func(c *raster.Canvas, v *View) {
		// Paint the model state so repaints are observable.
		for i := 0; i < m.n; i++ {
			c.Set(i, 0, '#')
		}
	}
	s := NewSession(root, raster.NewCanvas(50, 20))
	remove := s.BindModel(m)

	// A change while idle repaints immediately.
	m.inc()
	if s.Canvas.Count('#') != 1 {
		t.Fatalf("idle change not painted: %d", s.Canvas.Count('#'))
	}

	// Changes during an event coalesce into one repaint after it.
	paints := 0
	root.AddHandler(&ClickHandler{Action: func(v *View) {
		m.inc()
		m.inc()
		if s.Canvas.Count('#') != 1 {
			paints++ // repainted during the event: wrong
		}
	}})
	s.Replay([]display.Event{
		{Kind: display.MouseDown, X: 5, Y: 5, Time: 1},
		{Kind: display.MouseUp, X: 5, Y: 5, Time: 1.01},
	})
	if paints != 0 {
		t.Fatal("repainted mid-event instead of coalescing")
	}
	if s.Canvas.Count('#') != 3 {
		t.Fatalf("after event, painted %d", s.Canvas.Count('#'))
	}

	// After unbinding, changes no longer repaint.
	remove()
	m.inc()
	if s.Canvas.Count('#') != 3 {
		t.Fatal("unbound model still repaints")
	}
	if m.ModelSubject().ObserverCount() != 0 {
		t.Fatal("observer not removed")
	}
}
