package eager

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/features"
	"repro/internal/geom"
	"repro/internal/gesture"
	"repro/internal/linalg"
	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/recognizer"
)

// sessionMetrics is the streaming-recognition instrumentation shared by
// every Session a Recognizer spawns. All handles are nil until
// Instrument attaches a registry, so uninstrumented sessions pay only
// sub-5ns no-op calls per point (see internal/obs).
type sessionMetrics struct {
	decideNS    *obs.Histogram         // per-point latency of one Add (the paper's D + C-hat cost)
	decideWinNS *obs.WindowedHistogram // window.eager.decide_ns: rolling-window sibling of decideNS, feeds SLO burn rates
	commitFrac  *obs.Histogram         // commit point as fraction of gesture length (Run replays)
	firedEager *obs.Counter   // gestures recognized mid-stroke
	firedEnd   *obs.Counter   // gestures classified only at End (D never fired)
	resets     *obs.Counter   // Session.Reset calls
	poisoned   *obs.Counter   // strokes poisoned by a non-finite point
	degraded   *obs.Counter   // poisoned strokes recovered via Degrade
}

// Instrument attaches the recognizer's streaming metrics — and its two
// classifiers' metrics, under the "classifier.full" and "classifier.auc"
// prefixes — to the registry. A nil registry is a no-op.
//
// Concurrency contract: Instrument mutates the recognizer and both
// classifiers, so it must be called before the recognizer is shared
// (before handing it to serve.New or serve.Engine.Swap); sessions
// created afterwards record into the registry, and the instruments are
// lock-free so concurrent sessions stay race-free. eager.Train calls
// Instrument automatically when Options.Obs is set.
func (r *Recognizer) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	r.m = sessionMetrics{
		decideNS:    reg.Histogram("eager.decide_ns", obs.LatencyBuckets()),
		decideWinNS: reg.WindowedHistogram("window.eager.decide_ns", obs.LatencyBuckets(), 0, 0),
		commitFrac:  reg.Histogram("eager.commit_frac", obs.FractionBuckets()),
		firedEager: reg.Counter("eager.fired.eager"),
		firedEnd:   reg.Counter("eager.fired.end"),
		resets:     reg.Counter("eager.session.resets"),
		poisoned:   reg.Counter("eager.session.poisoned"),
		degraded:   reg.Counter("eager.session.degraded"),
	}
	r.Full.C.Instrument(reg, "classifier.full")
	r.AUC.Instrument(reg, "classifier.auc")
}

// Done implements the paper's D function on a complete gesture prefix:
// true iff the AUC classifies the prefix's feature vector into one of the
// complete sets, i.e. the prefix is judged unambiguous. A prefix whose
// features cannot be computed (non-finite coordinates) is an error, which
// callers should treat as "not done" plus a rejected stroke.
func (r *Recognizer) Done(g gesture.Gesture) (bool, error) {
	if g.Len() < r.Opts.MinSubgesture {
		return false, nil
	}
	f, err := r.Full.Features(g)
	if err != nil {
		return false, err
	}
	name, _, err := r.AUC.Classify(f)
	if err != nil {
		return false, err
	}
	return IsCompleteSet(name), nil
}

// Classify runs the full classifier on a gesture (used at the moment D
// fires, and as the fallback when the gesture ends without ever being
// judged unambiguous).
func (r *Recognizer) Classify(g gesture.Gesture) (string, error) {
	return r.Full.Classify(g)
}

// Decision is the outcome of one eager step, as reported to a Tap. The
// type now lives in internal/recognizer (it is part of the
// backend-neutral streaming contract — see recognizer.Decision); this
// alias keeps the historical eager.Decision name working for callers
// like internal/flight and cmd/greplay.
type Decision = recognizer.Decision

// Tap observes a session's raw inputs and decisions as they happen —
// the flight recorder's capture hook. Alias of recognizer.Tap, the
// backend-neutral home of the streaming contract.
type Tap = recognizer.Tap

// Session consumes one gesture's points as they arrive, implementing the
// paper's eager-recognition loop: "Each time a new mouse point arrives it
// is appended to the gesture being collected, and D is applied ... Once D
// returns true the collected gesture is passed to C-hat" — all with O(1)
// work per point (incremental features plus one AUC evaluation).
type Session struct {
	r       *Recognizer
	ext     *features.Extractor
	points  geom.Path
	decided bool
	class   string
	// Scratch buffers keep the per-point path allocation-free.
	featBuf linalg.Vec
	aucBuf  []float64
	fullBuf []float64
	// finite is the length of the leading all-finite point prefix — the
	// longest prefix the full classifier can still score after a
	// non-finite point poisons the incremental extractor. Degrade's
	// fallback input.
	finite int
	// Instrumentation (copied from the recognizer at NewSession; all
	// no-ops when the recognizer is uninstrumented).
	m         sessionMetrics
	decidedAt int  // point count when D fired eagerly; 0 otherwise
	noted     bool // poisoned-stroke counted (once per stroke, not per Add)
	// Tracing and capture, attached per session via SetSpan/SetTap; both
	// nil by default (disabled, sub-5ns no-op calls).
	span       *obs.Span
	tap        Tap
	lastMargin float64 // AUC margin computed on the last add, for spans/taps
	lastBest   string  // AUC's best class name on the last add
}

// initialPointCapacity is the point capacity a fresh Session preallocates
// so that typical strokes never grow the backing array on the per-point
// path; Reset retains whatever capacity the stroke actually reached.
const initialPointCapacity = 128

// NewSession starts a streaming recognition session. It fails only when
// the recognizer's feature options are invalid (e.g. deserialized from a
// corrupt file). Every buffer the per-point path needs — the point
// store, feature vector, and both score buffers — is allocated here,
// once, so Add stays allocation-free; pool sessions (serve.Engine does)
// and Reset between gestures to amortize this constructor away.
//
//glint:coldpath runs once per gesture stream, not per point, and session pooling (multipath.Session.Reset) amortizes even that away
func (r *Recognizer) NewSession() (*Session, error) {
	ext, err := features.NewExtractor(r.Full.Opts)
	if err != nil {
		return nil, fmt.Errorf("eager: %w", err)
	}
	return &Session{
		r:       r,
		ext:     ext,
		points:  make(geom.Path, 0, initialPointCapacity),
		featBuf: make(linalg.Vec, r.Full.Opts.Dim()),
		aucBuf:  make([]float64, r.AUC.NumClasses()),
		fullBuf: make([]float64, r.Full.C.NumClasses()),
		m:       r.m,
	}, nil
}

// NewStream starts a streaming recognition session behind the
// backend-neutral recognizer.Stream interface — the adapter that makes
// *Recognizer a recognizer.Backend. It is NewSession with the concrete
// type erased; serving stacks that only need the streaming contract
// (serve.Engine, multipath.Session) go through this.
//
//glint:coldpath runs once per gesture stream, not per point; session pooling amortizes it away
func (r *Recognizer) NewStream() (recognizer.Stream, error) {
	return r.NewSession()
}

// Caps reports the eager backend's capability flags: eager (D can fire
// mid-stroke) and degraded-fallback (Session.Degrade classifies a
// poisoned stroke's finite prefix) — see recognizer.Caps and
// BACKENDS.md.
func (r *Recognizer) Caps() recognizer.Caps {
	return recognizer.Caps{Name: "eager", Eager: true, DegradedFallback: true}
}

// SetSpan attaches a parent trace span: every subsequent Add records a
// "decide" child span (with per-point attributes: point index, the AUC's
// best class and ambiguity margin, the class on commit, the error text
// of a poisoned step) plus "auc_score"/"full_score" sub-spans around the
// classifier evaluations, and commit/reset/poisoned instants. A nil span
// (the default) disables tracing at sub-5ns cost per call site.
//
// Concurrency contract: like the session itself, SetSpan is
// single-goroutine — call it before the first Add. serve.Engine calls it
// with each gesture's root span when the engine is instrumented.
func (s *Session) SetSpan(parent *obs.Span) { s.span = parent }

// SetTap attaches a decision tap — the flight recorder's capture hook
// (flight.Capture implements Tap). A nil tap (the default) disables
// capture. Single-goroutine; call before the first Add.
func (s *Session) SetTap(t Tap) { s.tap = t }

// Add feeds one mouse point. It returns fired=true the first time the
// gesture becomes unambiguous, along with the recognized class. After the
// session has decided, further Adds still accumulate points (harmless) but
// report fired=false so callers act on the transition exactly once.
//
// A non-finite point poisons the accumulated features; Add (and a later
// End) then keep returning an error until Reset is called. Callers should
// reject the stroke.
//
// When the recognizer is instrumented (see Recognizer.Instrument), each
// Add observes its own latency into eager.decide_ns — the paper's
// per-mouse-point cost, measured as a distribution — and the first error
// of a stroke counts into eager.session.poisoned. When a span or tap is
// attached (SetSpan/SetTap), each Add additionally records a "decide"
// span and reports a Decision.
//
// Add is the core of the zero-allocation decide path (the paper's D +
// C-hat per-point cost): with tracing and capture disabled it performs
// no allocation once the session's preallocated buffers are warm.
//
//glint:hotpath
func (s *Session) Add(p geom.TimedPoint) (fired bool, class string, err error) {
	start := obs.Start(s.m.decideNS)
	sp := s.span.Child("decide")
	s.lastMargin, s.lastBest = 0, ""
	fired, class, err = s.add(p, sp)
	obs.ObserveSinceWindowed(s.m.decideNS, s.m.decideWinNS, start)
	if err != nil {
		if !s.noted {
			s.noted = true
			s.m.poisoned.Inc()
			s.span.Event("poisoned", err.Error())
		}
	} else if fired {
		s.decidedAt = len(s.points)
		s.m.firedEager.Inc()
		s.span.Event("commit", class)
	}
	sp.SetAttrInt("point", int64(len(s.points)))
	if s.lastBest != "" {
		sp.SetAttr("best", s.lastBest)
		sp.SetAttrFloat("margin", s.lastMargin)
	}
	if fired {
		sp.SetAttr("class", class)
	}
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
	if s.tap != nil {
		s.tap.TapPoint(p)
		s.tap.TapDecision(Decision{
			Index:  len(s.points),
			Kind:   "add",
			Fired:  fired,
			Class:  class,
			Margin: s.lastMargin,
			Err:    errText(err),
		})
	}
	return fired, class, err
}

// add is the uninstrumented body of Add. sp is the per-point decide span
// (nil when tracing is off); sub-spans for the classifier evaluations
// hang off it.
func (s *Session) add(p geom.TimedPoint, sp *obs.Span) (fired bool, class string, err error) {
	//lint:ignore hotalloc NewSession preallocates initialPointCapacity and Reset retains grown capacity, so steady-state appends never grow the backing array
	s.points = append(s.points, p)
	if s.finite == len(s.points)-1 &&
		mathx.Finite(p.X) && mathx.Finite(p.Y) && mathx.Finite(p.T) {
		s.finite = len(s.points)
	}
	s.ext.Add(p)
	if s.decided || len(s.points) < s.r.Opts.MinSubgesture {
		return false, "", nil
	}
	f, err := s.ext.VectorInto(s.featBuf)
	if err != nil {
		return false, "", err
	}
	aucSp := sp.Child("auc_score")
	name, _, err := s.r.AUC.ClassifyInto(f, s.aucBuf)
	aucSp.End()
	if err != nil {
		return false, "", err
	}
	if s.span != nil || s.tap != nil {
		// The running ambiguity margin: best complete minus best
		// incomplete AUC score. Positive means D fires (modulo agreement
		// gating). Computed only when someone is listening — replay
		// attaches a tap, so recorded and replayed margins come from the
		// same code path and compare bit-identically.
		if bestC, bestI := bestCompleteIncomplete(s.r.AUC, s.aucBuf); bestC >= 0 && bestI >= 0 {
			s.lastMargin = s.aucBuf[bestC] - s.aucBuf[bestI]
		}
		s.lastBest = name
	}
	if !IsCompleteSet(name) {
		return false, "", nil
	}
	fullSp := sp.Child("full_score")
	class, _, err = s.r.Full.C.ClassifyInto(f, s.fullBuf)
	fullSp.End()
	if err != nil {
		return false, "", err
	}
	if s.r.Opts.RequireAgreement && class != strings.TrimPrefix(name, CompletePrefix) {
		// The AUC believes the prefix is unambiguous but the full
		// classifier has not caught up yet (typical right at a corner):
		// wait for them to agree.
		return false, "", nil
	}
	s.decided = true
	s.class = class
	return true, s.class, nil
}

// errText renders an error for Decision.Err ("" when nil).
func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// Reset returns the session to its initial empty state so it can collect
// a fresh gesture, reusing every allocated buffer (points backing array,
// feature and score buffers, extractor). This is both the recovery path
// after a poisoned stroke — a non-finite point leaves the incremental
// features permanently non-finite, so Add and End error until Reset — and
// the reuse path for serving engines that pool sessions across gestures.
func (s *Session) Reset() {
	s.ext.Reset()
	s.points = s.points[:0]
	s.finite = 0
	s.decided = false
	s.class = ""
	s.decidedAt = 0
	s.noted = false
	s.m.resets.Inc()
	s.span.Event("reset", "")
}

// Decided reports whether the session has already fired.
func (s *Session) Decided() bool { return s.decided }

// Class returns the recognized class, or "" before any decision.
func (s *Session) Class() string { return s.class }

// PointCount returns the number of points fed so far.
func (s *Session) PointCount() int { return len(s.points) }

// Gesture returns the points collected so far as a gesture.
func (s *Session) Gesture() gesture.Gesture { return gesture.New(s.points) }

// End finishes the session at mouse-up: if the gesture was never judged
// unambiguous, it is classified in full now — counted into
// eager.fired.end when instrumented, the complement of the mid-stroke
// eager.fired.eager count. Returns the final class, or an error when the
// stroke's features are non-finite (the caller should reject the
// gesture).
//
//glint:coldpath runs once at mouse-up, not per point; the full classification it may do is the paper's fallback, priced per gesture
func (s *Session) End() (string, error) {
	if !s.decided {
		sp := s.span.Child("classify")
		class, err := s.r.Classify(s.Gesture())
		if err != nil {
			sp.SetAttr("error", err.Error())
			sp.End()
			if s.tap != nil {
				s.tap.TapDecision(Decision{Index: len(s.points), Kind: "end", Err: err.Error()})
			}
			return "", err
		}
		sp.SetAttr("class", class)
		sp.End()
		s.class = class
		s.decided = true
		s.m.firedEnd.Inc()
		if s.tap != nil {
			s.tap.TapDecision(Decision{Index: len(s.points), Kind: "end", Class: class})
		}
	}
	return s.class, nil
}

// FinitePrefix returns the length of the leading all-finite point
// prefix — equal to PointCount until a non-finite point poisons the
// stroke, frozen at the poisoning point after. This is the prefix
// Degrade classifies.
func (s *Session) FinitePrefix() int { return s.finite }

// Degrade is the poisoned stroke's fallback: where Add and End error
// once a non-finite point has wrecked the incremental features, Degrade
// classifies the longest finite prefix with the full classifier — the
// session keeps serving, on less evidence, instead of rejecting
// outright. It errors only when the finite prefix itself is
// unclassifiable (too short or degenerate); on success the session is
// decided and later End calls return the degraded class.
//
// Counted into eager.session.degraded when instrumented; the decision
// is reported to an attached Tap with Kind "degrade" and the prefix
// length as Index, so flight bundles of degraded gestures replay
// bit-identically (flight.Replay re-issues the Degrade). Calling
// Degrade on an already-decided session just returns its class.
//
//glint:coldpath poisoned-stroke fallback: runs at most once per gesture, only after a non-finite point already wrecked the stream
func (s *Session) Degrade() (string, error) {
	if s.decided {
		return s.class, nil
	}
	sp := s.span.Child("degrade")
	sp.SetAttrInt("prefix", int64(s.finite))
	if s.finite == 0 {
		// Zero points would still yield a finite (all-zero) feature
		// vector and a meaningless class; refuse instead.
		err := fmt.Errorf("eager: degrade: no finite prefix to classify")
		sp.SetAttr("error", err.Error())
		sp.End()
		if s.tap != nil {
			s.tap.TapDecision(Decision{Index: 0, Kind: "degrade", Err: err.Error()})
		}
		return "", err
	}
	class, err := s.r.Classify(gesture.New(s.points[:s.finite]))
	if err != nil {
		sp.SetAttr("error", err.Error())
		sp.End()
		if s.tap != nil {
			s.tap.TapDecision(Decision{Index: s.finite, Kind: "degrade", Err: err.Error()})
		}
		return "", err
	}
	sp.SetAttr("class", class)
	sp.End()
	s.class = class
	s.decided = true
	s.m.degraded.Inc()
	if s.tap != nil {
		s.tap.TapDecision(Decision{Index: s.finite, Kind: "degrade", Class: class})
	}
	return class, nil
}

// Run replays an entire gesture through a fresh session and reports the
// outcome: the recognized class and the number of points that had been
// seen when recognition fired (|g| when it only fired at the end). This is
// the measurement behind the paper's "percentage of mouse points examined"
// statistics in section 5; when the recognizer is instrumented, each
// replay observes firedAt/|g| into the eager.commit_frac histogram —
// the commit-point distribution behind the paper's accuracy/earliness
// trade-off.
func (r *Recognizer) Run(g gesture.Gesture) (class string, firedAt int, err error) {
	s, err := r.NewSession()
	if err != nil {
		return "", 0, err
	}
	for i, p := range g.Points {
		fired, c, err := s.Add(p)
		if err != nil {
			return "", 0, err
		}
		if fired {
			r.m.commitFrac.Observe(float64(i+1) / float64(g.Len()))
			return c, i + 1, nil
		}
	}
	class, err = s.End()
	if err != nil {
		return "", 0, err
	}
	r.m.commitFrac.Observe(1)
	return class, g.Len(), nil
}

// WriteJSON serializes the recognizer.
func (r *Recognizer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("eager: encode: %w", err)
	}
	return nil
}

// ReadJSON deserializes a recognizer, validating both classifiers and
// the feature options so corrupt files fail at load time rather than at
// recognition time.
func ReadJSON(rd io.Reader) (*Recognizer, error) {
	var r Recognizer
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("eager: decode: %w", err)
	}
	if r.Full == nil || r.Full.C == nil || r.AUC == nil {
		return nil, fmt.Errorf("eager: incomplete recognizer JSON")
	}
	if err := r.Full.Opts.Validate(); err != nil {
		return nil, fmt.Errorf("eager: %w", err)
	}
	if err := r.Full.C.Validate(); err != nil {
		return nil, fmt.Errorf("eager: full classifier: %w", err)
	}
	if err := r.AUC.Validate(); err != nil {
		return nil, fmt.Errorf("eager: auc: %w", err)
	}
	if r.Full.C.Dim != r.AUC.Dim {
		return nil, fmt.Errorf("eager: full classifier dimension %d does not match AUC dimension %d",
			r.Full.C.Dim, r.AUC.Dim)
	}
	if r.Opts.MinSubgesture < 2 {
		r.Opts.MinSubgesture = DefaultOptions().MinSubgesture
	}
	return &r, nil
}

// SaveFile writes the recognizer to the named file.
func (r *Recognizer) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("eager: %w", err)
	}
	defer f.Close()
	if err := r.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a recognizer from the named file.
func LoadFile(path string) (*Recognizer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("eager: %w", err)
	}
	defer f.Close()
	return ReadJSON(f)
}
