package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/eager"
	"repro/internal/geom"
	"repro/internal/multipath"
	"repro/internal/synth"
)

func trainRec(t testing.TB, seed int64) *eager.Recognizer {
	t.Helper()
	set, _ := synth.NewGenerator(synth.DefaultParams(seed)).Set("train", synth.UDClasses(), 12)
	rec, _, err := eager.Train(set, eager.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// sampleGesture returns one synthetic gesture of the given UD class index
// together with its class name.
func sampleGesture(seed int64, class int) (geom.Path, string) {
	gen := synth.NewGenerator(synth.DefaultParams(seed))
	c := synth.UDClasses()[class]
	return gen.Sample(c).G.Points, c.Name
}

// submitRetry submits through a Submitter with the unlimited-retry
// policy (the producer-side policy the engine's ErrQueueFull contract
// expects test producers to choose), failing the test on any
// non-backpressure error.
func submitRetry(t testing.TB, e *Engine, ev Event) {
	t.Helper()
	if err := NewSubmitter(e, SubmitterOptions{}).Submit(ev); err != nil {
		t.Fatalf("submit: %v", err)
	}
}

// playSession streams one full single-finger interaction (down, moves,
// up) for the given session ID.
func playSession(t testing.TB, e *Engine, id string, g geom.Path) {
	t.Helper()
	s := NewSubmitter(e, SubmitterOptions{})
	for i, p := range g {
		kind := multipath.FingerMove
		if i == 0 {
			kind = multipath.FingerDown
		}
		if err := s.Submit(Event{Session: id, Finger: 0, Kind: kind, X: p.X, Y: p.Y, T: p.T}); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	last := g[len(g)-1]
	if err := s.Submit(Event{Session: id, Finger: 0, Kind: multipath.FingerUp, X: last.X, Y: last.Y, T: last.T + 0.01}); err != nil {
		t.Fatalf("submit: %v", err)
	}
}

// resultSink collects results safely across shard goroutines, tracking
// duplicate Results per session (there must never be any).
type resultSink struct {
	mu       sync.Mutex
	classes  map[string]string
	outcomes map[string]Outcome
	dups     int
}

func newSink() *resultSink {
	return &resultSink{classes: make(map[string]string), outcomes: make(map[string]Outcome)}
}

func (rs *resultSink) add(r Result) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if _, ok := rs.classes[r.Session]; ok {
		rs.dups++
	}
	rs.classes[r.Session] = r.Class
	rs.outcomes[r.Session] = r.Outcome
}

func (rs *resultSink) get(id string) (string, bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	c, ok := rs.classes[id]
	return c, ok
}

func (rs *resultSink) outcome(id string) (Outcome, bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	o, ok := rs.outcomes[id]
	return o, ok
}

func (rs *resultSink) len() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.classes)
}

func (rs *resultSink) duplicates() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.dups
}

// TestManyConcurrentSessions drives many interleaved sessions from many
// producer goroutines through a multi-shard engine sharing one
// recognizer, and checks every session completes with the class a
// standalone session computes. Run under -race this exercises the
// snapshot-sharing contract end to end.
func TestManyConcurrentSessions(t *testing.T) {
	rec := trainRec(t, 7)
	sink := newSink()
	e, err := New(rec, Options{Shards: 4, QueueDepth: 64, OnResult: sink.add})
	if err != nil {
		t.Fatal(err)
	}

	const producers = 6
	const perProducer = 5
	type expect struct{ id, class string }
	var mu sync.Mutex
	var expects []expect

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for k := 0; k < perProducer; k++ {
				seed := int64(100 + p*31 + k)
				g, _ := sampleGesture(seed, (p+k)%2)
				id := fmt.Sprintf("s-%d-%d", p, k)

				// Ground truth: a standalone session over the same stream.
				ref := multipath.NewSession(rec)
				for i, pt := range g {
					kind := multipath.FingerMove
					if i == 0 {
						kind = multipath.FingerDown
					}
					ref.Handle(multipath.Event{Finger: 0, Kind: kind, X: pt.X, Y: pt.Y, T: pt.T})
				}
				last := g[len(g)-1]
				ref.Handle(multipath.Event{Finger: 0, Kind: multipath.FingerUp, X: last.X, Y: last.Y, T: last.T + 0.01})

				playSession(t, e, id, g)
				mu.Lock()
				expects = append(expects, expect{id, ref.Class()})
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	if got := sink.len(); got != producers*perProducer {
		t.Fatalf("completed %d sessions, want %d", got, producers*perProducer)
	}
	for _, ex := range expects {
		got, ok := sink.get(ex.id)
		if !ok {
			t.Fatalf("session %s never completed", ex.id)
		}
		if got != ex.class {
			t.Fatalf("session %s classified %q, standalone session says %q", ex.id, got, ex.class)
		}
	}
	st := e.Stats()
	if st.Active != 0 {
		t.Fatalf("active sessions after Close: %d", st.Active)
	}
	if st.Completed != int64(producers*perProducer) {
		t.Fatalf("completed counter %d, want %d", st.Completed, producers*perProducer)
	}
}

// TestSwapDuringActiveClassification hammers Swap from one goroutine
// while others stream sessions: the race gate proves snapshot handoff is
// clean, and every session must still resolve to a valid class from one
// of the recognizers (both are trained on the same classes, so "U"/"D").
func TestSwapDuringActiveClassification(t *testing.T) {
	recA := trainRec(t, 7)
	recB := trainRec(t, 8)
	sink := newSink()
	e, err := New(recA, Options{Shards: 3, QueueDepth: 64, OnResult: sink.add})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		use := recB
		for {
			select {
			case <-stop:
				return
			default:
			}
			if old := e.Swap(use); old == nil {
				t.Error("Swap returned nil previous recognizer")
				return
			}
			use = e.Swap(use).(*eager.Recognizer) // swap back and forth
			runtime.Gosched()
		}
	}()

	const n = 20
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			g, _ := sampleGesture(int64(500+k), k%2)
			playSession(t, e, fmt.Sprintf("swap-%d", k), g)
		}(k)
	}
	wg.Wait()
	close(stop)
	swapper.Wait()
	if e.Swap(nil) != nil {
		t.Fatal("Swap(nil) must refuse and return nil")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.len() != n {
		t.Fatalf("completed %d sessions, want %d", sink.len(), n)
	}
	for k := 0; k < n; k++ {
		class, _ := sink.get(fmt.Sprintf("swap-%d", k))
		if class != "U" && class != "D" && class != "" {
			t.Fatalf("session swap-%d got impossible class %q", k, class)
		}
	}
}

// TestBackpressureQueueFull wedges the single shard by blocking OnResult,
// fills the depth-1 queue, and asserts Submit reports ErrQueueFull
// (and counts it) instead of blocking or dropping.
func TestBackpressureQueueFull(t *testing.T) {
	rec := trainRec(t, 7)
	release := make(chan struct{})
	blocked := make(chan struct{})
	e, err := New(rec, Options{Shards: 1, QueueDepth: 1, OnResult: func(r Result) {
		if r.Session == "wedge" {
			close(blocked)
			<-release
		}
	}})
	if err != nil {
		t.Fatal(err)
	}

	g, _ := sampleGesture(900, 0)
	playSession(t, e, "wedge", g) // completing this session blocks the worker
	<-blocked

	// Worker is parked in OnResult. Queue capacity is 1: at most one more
	// event is accepted, then ErrQueueFull must surface.
	var sawFull bool
	for i := 0; i < 10; i++ {
		err := e.Submit(Event{Session: "next", Finger: 0, Kind: multipath.FingerDown, X: 1, Y: 1, T: float64(i)})
		if errors.Is(err, ErrQueueFull) {
			sawFull = true
			break
		}
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	if !sawFull {
		t.Fatal("queue never reported ErrQueueFull with a wedged worker")
	}
	if st := e.Stats(); st.Rejected == 0 {
		t.Fatalf("rejected counter not incremented: %+v", st)
	}
	close(release)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseDrainsInFlight: sessions mid-gesture at Close are finished —
// classified on the prefix collected so far — and reported, and Submit
// afterwards returns ErrClosed.
func TestCloseDrainsInFlight(t *testing.T) {
	rec := trainRec(t, 7)
	sink := newSink()
	e, err := New(rec, Options{Shards: 2, QueueDepth: 32, OnResult: sink.add})
	if err != nil {
		t.Fatal(err)
	}
	g, _ := sampleGesture(901, 0)
	for i := 0; i < len(g)-2; i++ { // down + moves, never up
		kind := multipath.FingerMove
		if i == 0 {
			kind = multipath.FingerDown
		}
		submitRetry(t, e, Event{Session: "inflight", Finger: 0, Kind: kind, X: g[i].X, Y: g[i].Y, T: g[i].T})
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := sink.get("inflight"); !ok {
		t.Fatal("in-flight session not drained at Close")
	}
	if o, _ := sink.outcome("inflight"); o != OutcomeDrained {
		t.Fatalf("drained session reported outcome %v, want %v", o, OutcomeDrained)
	}
	if err := e.Submit(Event{Session: "late", Kind: multipath.FingerDown}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	st := e.Stats()
	if st.Active != 0 || st.Completed != 1 {
		t.Fatalf("stats after drain: %+v", st)
	}
}

// TestStrayEventsIgnored: moves/ups for sessions the engine has never
// seen (or already retired) must not create state.
func TestStrayEventsIgnored(t *testing.T) {
	rec := trainRec(t, 7)
	e, err := New(rec, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	submitRetry(t, e, Event{Session: "ghost", Finger: 0, Kind: multipath.FingerMove, X: 1, Y: 1, T: 0})
	submitRetry(t, e, Event{Session: "ghost", Finger: 0, Kind: multipath.FingerUp, X: 1, Y: 1, T: 0.01})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Active != 0 || st.Completed != 0 {
		t.Fatalf("stray events created sessions: %+v", st)
	}
}

// TestOptionValidation: nil recognizer and negative options are refused.
func TestOptionValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Error("nil recognizer accepted")
	}
	rec := trainRec(t, 7)
	if _, err := New(rec, Options{Shards: -1}); err == nil {
		t.Error("negative Shards accepted")
	}
	if _, err := New(rec, Options{QueueDepth: -1}); err == nil {
		t.Error("negative QueueDepth accepted")
	}
	if _, err := New(rec, Options{IdleTimeout: -1}); err == nil {
		t.Error("negative IdleTimeout accepted")
	}
}

// TestCompletedOutcome: the healthy path reports OutcomeCompleted and
// its string form renders for logs.
func TestCompletedOutcome(t *testing.T) {
	rec := trainRec(t, 7)
	sink := newSink()
	e, err := New(rec, Options{Shards: 1, OnResult: sink.add})
	if err != nil {
		t.Fatal(err)
	}
	g, _ := sampleGesture(905, 1)
	playSession(t, e, "healthy", g)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if o, ok := sink.outcome("healthy"); !ok || o != OutcomeCompleted {
		t.Fatalf("outcome = %v (present %v), want %v", o, ok, OutcomeCompleted)
	}
	want := map[Outcome]string{
		OutcomeCompleted: "completed",
		OutcomeDegraded:  "degraded",
		OutcomeDrained:   "drained",
		OutcomeReaped:    "reaped",
		OutcomePanicked:  "panicked",
		Outcome(42):      "outcome(42)",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(o), o.String(), s)
		}
	}
}
